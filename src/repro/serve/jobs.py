"""Job requests: canonicalisation, content-addressed keys, executors.

A submitted job is a JSON payload naming one of three kinds —
``experiment`` (a registered paper reproduction), ``scenario`` (one
seeded heavy-traffic preset run) or ``sweep`` (an N-seed scenario sweep
through the parallel runner).  :func:`normalize_request` reduces the
payload to its canonical form so that *equivalent* requests — reordered
fields, ``4.0`` for ``4``, defaults spelled out versus elided — map to
one :func:`job_key`, which is what the server deduplicates on:

* unknown fields are rejected (a typo must not silently fork a key);
* every number with an exact integer value is canonicalised to ``int``
  (JSON clients routinely ship ``seed: 3.0``); non-integral floats and
  arbitrary-precision ints pass through unchanged, so distinct values
  can never collapse onto one key;
* defaults are filled in before hashing, so eliding ``engine`` equals
  writing ``"reference"``;
* execution knobs (``workers`` etc., see
  :data:`repro.runner.executor.EXECUTION_OPTIONS`) are stripped — they
  change how a result is computed, never what it is.

:func:`execute_job` is the blocking executor the server runs in a
thread: it dispatches on the ``job_kind`` seam to the existing runner
entry points (:func:`~repro.runner.executor.run_experiments`,
:func:`~repro.scenarios.sweep.run_scenario_sweep`) and returns a
JSON-safe result payload.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..runner.cache import ResultCache, canonical_key
from ..runner.executor import EXECUTION_OPTIONS, run_experiments
from ..runner.instrumentation import RunnerStats
from ..obs import Observability
from .protocol import PROTOCOL_VERSION

__all__ = [
    "JOB_KINDS",
    "JobError",
    "JobRequest",
    "normalize_request",
    "job_key",
    "execute_job",
]

#: The registered job kinds (the ``job_kind`` engine seam; mirrored in
#: ``repro.lint.seams``).
JOB_KINDS = ("experiment", "scenario", "sweep")

#: Allowed spec fields per kind (after sugar like ``n_seeds`` expands).
_ALLOWED_FIELDS = {
    "experiment": frozenset({"id", "options"}),
    "scenario": frozenset({"preset", "seed", "engine"}),
    "sweep": frozenset({"preset", "seeds", "n_seeds", "engine"}),
}


class JobError(ValueError):
    """An invalid job payload (unknown kind, bad field, bad value)."""


def _canonical_number(value: float) -> int | float:
    """Ints and int-valued floats share one canonical form.

    ``4.0`` and ``4`` are the same request over JSON, so both map to
    ``4``.  The round-trip guard keeps distinct values distinct: a
    float is only folded when ``int(v)`` converts back to exactly the
    same float, and ints (arbitrary precision) are never touched, so
    e.g. ``2**53`` and ``2**53 + 1`` keep distinct keys even though
    they collide as doubles.
    """
    if isinstance(value, float) and value.is_integer() \
            and float(int(value)) == value:
        return int(value)
    return value


def _normalize_value(value: Any, where: str) -> Any:
    """Reduce one spec value to canonical JSON-safe primitives."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return _canonical_number(value)
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value, key=str):
            out[str(key)] = _normalize_value(value[key], f"{where}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [_normalize_value(v, f"{where}[]") for v in value]
    raise JobError(
        f"{where}: unsupported value type {type(value).__name__} "
        "(job specs are JSON: str/int/float/bool/None/list/dict)")


def _require_str(spec: Mapping, field: str, job_kind: str) -> str:
    value = spec.get(field)
    if not isinstance(value, str) or not value:
        raise JobError(
            f"{job_kind} job requires a non-empty string {field!r}")
    return value


def _require_int(value: Any, where: str) -> int:
    value = _canonical_number(value) if isinstance(value, float) else value
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobError(f"{where} must be an integer, got {value!r}")
    return value


@dataclass(frozen=True)
class JobRequest:
    """One canonicalised job: a kind plus its normalised spec."""

    job_kind: str
    spec: Any  # canonical dict; hashable-by-content via key()

    def key(self) -> str:
        """The job's content address (see :func:`job_key`)."""
        return job_key(self)

    def to_payload(self) -> dict[str, Any]:
        """The wire payload that re-normalises to this request."""
        return {"kind": self.job_kind, **self.spec}

    def describe(self) -> str:
        if self.job_kind == "experiment":
            return f"experiment {self.spec['id']}"
        if self.job_kind == "scenario":
            return (f"scenario {self.spec['preset']} "
                    f"seed={self.spec['seed']} ({self.spec['engine']})")
        return (f"sweep {self.spec['preset']} x{len(self.spec['seeds'])} "
                f"seeds ({self.spec['engine']})")


def _packet_engines() -> tuple[str, ...]:
    from ..simulation.network import PACKET_ENGINES

    return tuple(PACKET_ENGINES)


def _normalize_engine(spec: Mapping, job_kind: str) -> str:
    engine = spec.get("engine", "reference")
    engines = _packet_engines()
    if engine not in engines:
        raise JobError(
            f"{job_kind} job names unknown packet engine {engine!r}; "
            f"registered: {', '.join(engines)}")
    return engine


def _normalize_preset(spec: Mapping, job_kind: str) -> str:
    from ..scenarios import PRESETS

    preset = _require_str(spec, "preset", job_kind)
    if preset not in PRESETS:
        raise JobError(
            f"unknown scenario preset {preset!r}; "
            f"available: {', '.join(sorted(PRESETS))}")
    return preset


def normalize_request(payload: Mapping[str, Any]) -> JobRequest:
    """Validate and canonicalise one submitted job payload.

    The payload carries ``kind`` plus the kind's spec fields inline
    (``{"kind": "scenario", "preset": "incast-32", "seed": 3}``).
    Raises :class:`JobError` on anything malformed.
    """
    if not isinstance(payload, Mapping):
        raise JobError(
            f"job payload must be an object, got {type(payload).__name__}")
    job_kind = payload.get("kind")
    if job_kind not in JOB_KINDS:
        raise JobError(
            f"unknown job kind {job_kind!r}; "
            f"registered: {', '.join(JOB_KINDS)}")
    spec = {k: v for k, v in payload.items() if k != "kind"}
    unknown = sorted(set(spec) - set(_ALLOWED_FIELDS[job_kind]))
    if unknown:
        raise JobError(
            f"{job_kind} job has unknown field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(_ALLOWED_FIELDS[job_kind]))}")

    if job_kind == "experiment":
        from ..experiments.base import all_experiments

        experiment_id = _require_str(spec, "id", job_kind)
        import repro.experiments  # noqa: F401 — registration side effects

        if experiment_id not in all_experiments():
            raise JobError(
                f"unknown experiment id {experiment_id!r}; "
                f"registered: {', '.join(sorted(all_experiments()))}")
        options = spec.get("options", {})
        if not isinstance(options, Mapping):
            raise JobError("experiment options must be an object")
        options = {k: v for k, v in options.items()
                   if k not in EXECUTION_OPTIONS}
        canonical = {
            "id": experiment_id,
            "options": _normalize_value(options, "options"),
        }
    elif job_kind == "scenario":
        canonical = {
            "preset": _normalize_preset(spec, job_kind),
            "seed": _require_int(spec.get("seed", 0), "seed"),
            "engine": _normalize_engine(spec, job_kind),
        }
    else:
        if "seeds" in spec and "n_seeds" in spec:
            raise JobError("sweep job takes seeds or n_seeds, not both")
        if "n_seeds" in spec:
            n_seeds = _require_int(spec["n_seeds"], "n_seeds")
            if n_seeds < 1:
                raise JobError(f"n_seeds must be >= 1, got {n_seeds}")
            seeds = list(range(n_seeds))
        else:
            raw = spec.get("seeds", [0])
            if not isinstance(raw, (list, tuple)) or not raw:
                raise JobError("sweep seeds must be a non-empty list")
            seeds = [_require_int(s, "seeds[]") for s in raw]
        canonical = {
            "preset": _normalize_preset(spec, job_kind),
            "seeds": seeds,
            "engine": _normalize_engine(spec, job_kind),
        }
    return JobRequest(job_kind=job_kind, spec=canonical)


def job_key(request: JobRequest) -> str:
    """Content address of one canonical request.

    Reuses the cache's canonical hashing with the protocol version in
    place of the package version: the *key* identifies the request, and
    the :class:`~repro.runner.cache.ResultCache` mixes the package
    version in again at store time, so a package upgrade invalidates
    stored results without renaming in-flight jobs.
    """
    return canonical_key(f"serve.{request.job_kind}", request.spec,
                         f"proto{PROTOCOL_VERSION}")


# -- execution ---------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars/arrays so a payload serialises as JSON."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def _series_digest(series: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over an experiment's series columns, order-free."""
    digest = hashlib.sha256()
    for name in sorted(series):
        arr = np.ascontiguousarray(np.asarray(series[name], dtype=float))
        digest.update(name.encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def execute_job(
    request: JobRequest,
    *,
    cache: ResultCache | None = None,
    workers: int | None = 0,
    stats: RunnerStats | None = None,
    obs: Observability | None = None,
) -> dict[str, Any]:
    """Run one job to completion (blocking) and return its payload.

    Dispatches on the ``job_kind`` seam to the existing runner entry
    points; ``cache`` is the *underlying* result cache those entry
    points consult (the server separately caches the whole envelope),
    ``workers`` sizes their process pools (0/1 = inline), ``stats``
    collects per-unit progress and ``obs`` the ``runner.*`` metrics.
    """
    job_kind = request.job_kind
    spec = request.spec
    if job_kind == "experiment":
        pairs = run_experiments(
            [spec["id"]], workers=0, cache=cache,
            options=dict(spec["options"]), stats=stats, obs=obs,
        )
        _, result = pairs[0]
        return {
            "experiment_id": result.experiment_id,
            "title": result.title,
            "passed": result.passed,
            "verdicts": _json_safe(dict(result.verdicts)),
            "notes": list(result.notes),
            "series_columns": sorted(result.series),
            "series_sha256": _series_digest(result.series),
        }
    elif job_kind == "scenario":
        from ..scenarios.sweep import ScenarioPoint, evaluate_scenario_point

        point = ScenarioPoint(preset=spec["preset"], engine=spec["engine"],
                              seed=spec["seed"])
        record = _json_safe(evaluate_scenario_point(point))
        if stats is not None:
            stats.record(f"scenario[{spec['seed']}]", 0.0)
        return {"record": record}
    elif job_kind == "sweep":
        from ..scenarios.sweep import run_scenario_sweep

        sweep = run_scenario_sweep(
            spec["preset"], seeds=spec["seeds"], engine=spec["engine"],
            workers=workers, cache=cache, stats=stats, obs=obs,
        )
        return {
            "axes": _json_safe(sweep.axes),
            "records": _json_safe(sweep.records),
        }
    else:
        raise JobError(f"unknown job kind {job_kind!r}")

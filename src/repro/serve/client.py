"""Sync and async clients for the job server.

:class:`ServeClient` is a plain blocking socket client — importable
from scripts, tests and the CLI without touching asyncio (and therefore
usable from *inside* threads that already host an event loop).
:class:`AsyncServeClient` is the stream-based equivalent for callers
that live on a loop.

Both speak the protocol in :mod:`repro.serve.protocol`: one JSON object
per line, requests carry ``op``, responses carry ``ok``, streamed
progress carries ``event``.  A response with ``ok: false`` raises
:class:`ServeError`.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Iterator

from .protocol import MAX_LINE_BYTES, PROTOCOL_VERSION, decode_line, encode_line

__all__ = ["ServeError", "ServeClient", "AsyncServeClient"]

#: ``on_event`` callback type: receives each streamed event dict.
EventCallback = Callable[[dict], None]


class ServeError(RuntimeError):
    """The server refused a request (or the connection broke)."""


def _check(obj: dict) -> dict:
    if obj.get("ok") is False:
        raise ServeError(obj.get("error", "server refused the request"))
    return obj


class ServeClient:
    """Blocking client over one TCP connection.

    Usable as a context manager; all methods return the decoded
    response dict (minus any transport framing).
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 300.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    # -- transport ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _read(self) -> dict:
        line = self._rfile.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ServeError("server closed the connection")
        return _check(decode_line(line))

    def _call(self, msg: dict) -> dict:
        self._sock.sendall(encode_line({"v": PROTOCOL_VERSION, **msg}))
        return self._read()

    def _read_events(self, on_event: EventCallback | None) -> dict:
        """Consume streamed events until the terminal ``end`` message."""
        while True:
            obj = self._read()
            if obj.get("event") == "end":
                return obj
            if on_event is not None:
                on_event(obj)

    # -- operations ---------------------------------------------------------

    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def submit(self, job: dict, *, wait: bool = False) -> dict:
        """Submit one job payload; with ``wait`` the response carries
        ``result`` (the full envelope) once the job finishes."""
        return self._call({"op": "submit", "job": job, "wait": wait})

    def submit_and_watch(self, job: dict,
                         on_event: EventCallback | None = None) -> dict:
        """Submit and stream progress; returns the terminal event."""
        ack = self._call({"op": "submit", "job": job, "watch": True})
        end = self._read_events(on_event)
        end["key"] = end.get("key", ack.get("key"))
        return end

    def status(self, key: str) -> dict:
        return self._call({"op": "status", "key": key})

    def result(self, key: str, *, wait: bool = True,
               timeout: float | None = None) -> dict:
        """The finished job's envelope (raises ServeError on failure)."""
        msg: dict[str, Any] = {"op": "result", "key": key, "wait": wait}
        if timeout is not None:
            msg["timeout"] = timeout
        return self._call(msg)["result"]

    def watch(self, key: str, on_event: EventCallback | None = None) -> dict:
        """Stream an existing job's progress; returns the end event."""
        self._sock.sendall(encode_line(
            {"v": PROTOCOL_VERSION, "op": "watch", "key": key}))
        return self._read_events(on_event)

    def list_jobs(self) -> list[dict]:
        return self._call({"op": "list"})["jobs"]

    def stats(self) -> dict:
        return self._call({"op": "stats"})

    def drain(self) -> dict:
        return self._call({"op": "drain"})

    def run(self, job: dict) -> dict:
        """Submit, wait, and return just the result envelope."""
        response = self.submit(job, wait=True)
        if response.get("state") != "done":
            raise ServeError(
                f"job {response.get('key')} ended {response.get('state')}"
                + (f": {response['failure']}" if response.get("failure")
                   else ""))
        return response["result"]

    def iter_watch(self, key: str) -> Iterator[dict]:
        """Generator form of :meth:`watch` (yields the end event last)."""
        self._sock.sendall(encode_line(
            {"v": PROTOCOL_VERSION, "op": "watch", "key": key}))
        while True:
            obj = self._read()
            yield obj
            if obj.get("event") == "end":
                return


class AsyncServeClient:
    """Asyncio client over one TCP connection (``await connect(...)``)."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServeClient":
        import asyncio

        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _read(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ServeError("server closed the connection")
        return _check(decode_line(line))

    async def _call(self, msg: dict) -> dict:
        self._writer.write(encode_line({"v": PROTOCOL_VERSION, **msg}))
        await self._writer.drain()
        return await self._read()

    async def ping(self) -> dict:
        return await self._call({"op": "ping"})

    async def submit(self, job: dict, *, wait: bool = False) -> dict:
        return await self._call({"op": "submit", "job": job, "wait": wait})

    async def status(self, key: str) -> dict:
        return await self._call({"op": "status", "key": key})

    async def result(self, key: str, *, wait: bool = True,
                     timeout: float | None = None) -> dict:
        msg: dict[str, Any] = {"op": "result", "key": key, "wait": wait}
        if timeout is not None:
            msg["timeout"] = timeout
        return (await self._call(msg))["result"]

    async def watch(self, key: str,
                    on_event: EventCallback | None = None) -> dict:
        """Stream progress for ``key``; returns the terminal event."""
        self._writer.write(encode_line(
            {"v": PROTOCOL_VERSION, "op": "watch", "key": key}))
        await self._writer.drain()
        while True:
            obj = await self._read()
            if obj.get("event") == "end":
                return obj
            if on_event is not None:
                on_event(obj)

    async def submit_and_watch(self, job: dict,
                               on_event: EventCallback | None = None) -> dict:
        ack = await self._call({"op": "submit", "job": job, "watch": True})
        while True:
            obj = await self._read()
            if obj.get("event") == "end":
                obj["key"] = obj.get("key", ack.get("key"))
                return obj
            if on_event is not None:
                on_event(obj)

    async def list_jobs(self) -> list[dict]:
        return (await self._call({"op": "list"}))["jobs"]

    async def stats(self) -> dict:
        return await self._call({"op": "stats"})

    async def drain(self) -> dict:
        return await self._call({"op": "drain"})

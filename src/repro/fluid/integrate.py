"""Piecewise numerical integration of the BCN fluid model.

:func:`simulate_fluid` integrates the switched fluid model with
`scipy.integrate.solve_ivp`, restarting at every switching-line crossing
so the discontinuous right-hand side never degrades accuracy.  Three
fidelity modes:

``"linearized"``
    Both regions linearised about the origin (eq. 9) — integrates the
    exact same system the closed-form machinery solves; used to validate
    :mod:`repro.core.trajectories` numerically.
``"nonlinear"``
    The paper's full model (eq. 8), unconstrained state.
``"physical"``
    The full model plus the physical buffer: the queue pins at ``B``
    (arrivals dropped, ``sigma = q0 - B``) and at ``0`` (link idle,
    ``sigma = q0``, the warm-up law).  This is the model against which
    strong stability (Definition 1) is literally defined.

Every run records switching events, local extrema of ``x`` (where
``y = 0``), buffer hits, and the sampled trajectory.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Literal

import numpy as np
from scipy.integrate import solve_ivp

from ..core.eigen import Region
from ..core.parameters import BCNParams, NormalizedParams
from .model import (
    as_normalized,
    decrease_field,
    increase_field,
    linearized_decrease_field,
    pinned_full_field,
)

__all__ = ["FluidEvent", "FluidTrajectory", "simulate_fluid", "solver_limits"]

#: FluidEvent.kind -> shared obs event vocabulary (repro.obs.trace).
_OBS_KIND = {
    "switch": "region_switch",
    "extremum": "extremum",
    "buffer_full": "buffer_full",
    "buffer_empty": "buffer_empty",
}


def record_fluid_obs(obs, engine: str, p: NormalizedParams,
                     events, converged: bool, t_end: float,
                     x_samples: np.ndarray, *, row: int | None = None) -> None:
    """Emit one fluid trajectory's events and queue histograms on ``obs``.

    Shared between the reference integrator and the batch kernel so both
    produce the identical event vocabulary (the conformance contract).
    """
    if obs is None or not obs.enabled:
        return
    for event in events:
        obs.event(_OBS_KIND[event.kind], event.time, engine=engine, row=row,
                  value=event.x)
    if converged:
        obs.event("converged", t_end, engine=engine, row=row)
    obs.observe_queue(engine, p.q0 + np.asarray(x_samples, dtype=float),
                      p.buffer_size, p.q0)

Mode = Literal["linearized", "nonlinear", "physical"]

_CONVERGENCE_RTOL = 1e-5


@lru_cache(maxsize=512)
def solver_limits(params: NormalizedParams) -> tuple[float, float]:
    """Default ``solve_ivp`` limits ``(atol, max_step)`` for ``params``.

    ``atol`` scales with the natural state magnitudes ``(q0, C)``;
    ``max_step`` is a twentieth of the fastest natural timescale
    (``|lambda| <= k n`` for either region) so switching events cannot
    be stepped over.  Cached per parameter set: sweeps, return-map scans
    and per-segment restarts all reuse one computation instead of
    re-deriving the eigenvalue bound at every ``solve_ivp`` call.
    """
    atol = min(params.q0, params.capacity) * 1e-12
    fastest = max(params.k * params.n_increase, params.k * params.n_decrease)
    max_step = 0.05 / fastest if fastest > 0.0 else math.inf
    return atol, max_step


@dataclass(frozen=True)
class FluidEvent:
    """A recorded event along a fluid trajectory."""

    time: float
    kind: str  #: "switch" | "extremum" | "buffer_full" | "buffer_empty"
    x: float
    y: float


@dataclass
class FluidTrajectory:
    """Result of a fluid-model integration.

    Attributes
    ----------
    t, x, y:
        Sampled trajectory (normalised coordinates).
    events:
        Chronological :class:`FluidEvent` list.
    converged:
        Whether the state entered the convergence ball before ``t_max``.
    end_reason:
        ``"converged"``, ``"time_limit"`` or ``"max_switches"``.
    """

    params: NormalizedParams
    mode: Mode
    t: np.ndarray
    x: np.ndarray
    y: np.ndarray
    events: list[FluidEvent] = field(default_factory=list)
    converged: bool = False
    end_reason: str = "time_limit"

    @property
    def switch_times(self) -> list[float]:
        return [e.time for e in self.events if e.kind == "switch"]

    @property
    def extrema(self) -> list[tuple[float, float]]:
        """Local extrema of ``x``: event-accurate ``(t, x)`` pairs."""
        return [(e.time, e.x) for e in self.events if e.kind == "extremum"]

    def max_x(self) -> float:
        candidates = [self.x.max()] if self.x.size else []
        candidates += [e.x for e in self.events]
        return max(candidates) if candidates else 0.0

    def min_x(self) -> float:
        candidates = [self.x.min()] if self.x.size else []
        candidates += [e.x for e in self.events]
        return min(candidates) if candidates else 0.0

    def queue(self) -> np.ndarray:
        """Queue length ``q(t) = q0 + x(t)`` in bits."""
        return self.params.q0 + self.x

    def aggregate_rate(self) -> np.ndarray:
        """Aggregate source rate ``N r(t) = C + y(t)`` in bits/s."""
        return self.params.capacity + self.y

    def queue_peak(self) -> float:
        return self.params.q0 + self.max_x()

    def queue_trough(self) -> float:
        return self.params.q0 + self.min_x()

    def hit_buffer_full(self) -> bool:
        return any(e.kind == "buffer_full" for e in self.events)

    def hit_buffer_empty_after_start(self) -> bool:
        """Queue re-emptied after first leaving empty (Definition 1)."""
        left_empty = False
        for e in self.events:
            if e.kind == "buffer_empty":
                if left_empty:
                    return True
            elif e.x > -self.params.q0 * (1.0 - 1e-9):
                left_empty = True
        # Also scan samples: the trajectory may start empty.
        if self.x.size:
            started_empty = self.x[0] <= -self.params.q0 * (1.0 - 1e-9)
            above = self.x > -self.params.q0 * 0.999
            if started_empty and above.any():
                first_above = int(np.argmax(above))
                return bool(
                    (self.x[first_above:] <= -self.params.q0 * (1.0 - 1e-9)).any()
                )
            if not started_empty:
                return bool((self.x <= -self.params.q0 * (1.0 - 1e-9)).any())
        return False

    def strongly_stable(self) -> bool:
        """Definition 1 verdict on this (finite-horizon) trajectory."""
        return (
            self.converged
            and not self.hit_buffer_full()
            and not self.hit_buffer_empty_after_start()
            and self.max_x() < self.params.buffer_size - self.params.q0
        )


def _region_of(p: NormalizedParams, x: float, y: float) -> Region:
    s = x + p.k * y
    if s < 0.0:
        return Region.INCREASE
    if s > 0.0:
        return Region.DECREASE
    return Region.DECREASE if y > 0.0 else Region.INCREASE


def simulate_fluid(
    params: NormalizedParams | BCNParams,
    *,
    x0: float | None = None,
    y0: float = 0.0,
    t_max: float = 10.0,
    mode: Mode = "nonlinear",
    max_switches: int = 500,
    rtol: float = 1e-9,
    atol: float | None = None,
    max_step: float | None = None,
    convergence_rtol: float = _CONVERGENCE_RTOL,
    obs=None,
) -> FluidTrajectory:
    """Integrate the switched BCN fluid model.

    Parameters
    ----------
    params:
        Physical (:class:`BCNParams`) or normalised parameters.
    x0, y0:
        Initial normalised state; defaults to the canonical
        post-warm-up point ``(-q0, 0)``.
    t_max:
        Time horizon in seconds.
    mode:
        Fidelity mode (see module docstring).
    max_switches:
        Cap on region switches (limit cycles never converge).
    rtol, atol, max_step:
        `solve_ivp` tolerances; ``atol`` defaults to scale with
        ``(q0, C)``, ``max_step`` to a fraction of the fastest natural
        period so events cannot be stepped over.
    obs:
        Optional :class:`repro.obs.Observability` handle; when given,
        the run reports a ``fluid.reference.simulate`` span, emits the
        trajectory's events under ``engine="fluid.reference"`` and
        fills the normalised queue histograms.
    """
    wall_start = _time.monotonic() if obs is not None else 0.0  # repro-lint: disable=wall-clock -- obs span wall-time
    p = as_normalized(params)
    if x0 is None:
        x0 = -p.q0
    default_atol, default_max_step = solver_limits(p)
    if atol is None:
        atol = default_atol
    if max_step is None:
        max_step = default_max_step

    inc = increase_field(p)
    dec = linearized_decrease_field(p) if mode == "linearized" else decrease_field(p)
    physical = mode == "physical"
    x_full = p.buffer_size - p.q0
    x_empty = -p.q0

    def switching_event(t: float, s: np.ndarray) -> float:
        return s[0] + p.k * s[1]

    switching_event.terminal = True

    def extremum_event(t: float, s: np.ndarray) -> float:
        return s[1]

    extremum_event.terminal = False

    def full_event(t: float, s: np.ndarray) -> float:
        return s[0] - x_full

    full_event.terminal = physical
    full_event.direction = 1.0

    def empty_event(t: float, s: np.ndarray) -> float:
        return s[0] - x_empty

    empty_event.terminal = physical
    empty_event.direction = -1.0

    ts: list[np.ndarray] = []
    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    events: list[FluidEvent] = []

    t = 0.0
    x, y = float(x0), float(y0)
    converged = False
    end_reason = "max_switches"
    switches = 0

    def record_samples(sol) -> None:
        ts.append(sol.t)
        xs.append(sol.y[0])
        ys.append(sol.y[1])

    def is_converged(xv: float, yv: float) -> bool:
        return (
            abs(xv) / p.q0 <= convergence_rtol
            and abs(yv) / p.capacity <= convergence_rtol
        )

    # Handle a start pinned at the empty buffer (physical warm-up).
    if physical and x <= x_empty and y < 0.0:
        t = _integrate_pinned_empty(p, t, y, t_max, ts, xs, ys, events)
        x, y = x_empty, 0.0

    # After a crossing the state sits on the line up to solver tolerance;
    # the flow direction (d(x+ky)/dt = y, exact on the line) picks the
    # next region, and a tiny Euler nudge moves the state strictly inside
    # it so the terminal event cannot re-fire at once.
    region: Region | None = None

    while t < t_max and switches <= max_switches:
        if is_converged(x, y):
            converged = True
            end_reason = "converged"
            break
        if region is None:
            region = _region_of(p, x, y)
        fld = inc if region is Region.INCREASE else dec
        dxdt, dydt = fld(t, np.array([x, y]))
        speed = math.hypot(dxdt, dydt)
        if speed > 0.0 and abs(x + p.k * y) < 1e-9 * (abs(x) + p.k * abs(y) + p.q0):
            dt_nudge = 1e-9 * (abs(x) + p.k * abs(y) + p.q0) / speed
            x += dxdt * dt_nudge
            y += dydt * dt_nudge
        sol = solve_ivp(
            fld,
            (t, t_max),
            [x, y],
            events=[switching_event, extremum_event, full_event, empty_event],
            rtol=rtol,
            atol=atol,
            max_step=max_step,
            dense_output=False,
        )
        record_samples(sol)
        for te, se in zip(sol.t_events[1], sol.y_events[1]):
            if te > t + 1e-15:
                events.append(FluidEvent(float(te), "extremum", float(se[0]), float(se[1])))
        for te, se in zip(sol.t_events[2], sol.y_events[2]):
            events.append(FluidEvent(float(te), "buffer_full", float(se[0]), float(se[1])))
        for te, se in zip(sol.t_events[3], sol.y_events[3]):
            events.append(FluidEvent(float(te), "buffer_empty", float(se[0]), float(se[1])))

        if sol.status == 1 and len(sol.t_events[0]) > 0 and (
            not physical
            or (len(sol.t_events[2]) == 0 and len(sol.t_events[3]) == 0)
        ):
            # Terminated at a switching-line crossing.
            t = float(sol.t_events[0][-1])
            x, y = (float(v) for v in sol.y_events[0][-1])
            events.append(FluidEvent(t, "switch", x, y))
            switches += 1
            region = Region.DECREASE if y > 0.0 else Region.INCREASE
            continue
        if physical and sol.status == 1 and len(sol.t_events[2]) > 0:
            # Queue pinned full: 1-D rate decay until y returns to 0.
            t = float(sol.t_events[2][-1])
            y = float(sol.y_events[2][-1][1])
            t = _integrate_pinned_full(p, t, y, t_max, ts, xs, ys, events)
            x, y = x_full, 0.0
            region = None
            continue
        if physical and sol.status == 1 and len(sol.t_events[3]) > 0:
            t = float(sol.t_events[3][-1])
            y = float(sol.y_events[3][-1][1])
            t = _integrate_pinned_empty(p, t, y, t_max, ts, xs, ys, events)
            x, y = x_empty, 0.0
            region = None
            continue
        # Reached t_max without further events.
        t = float(sol.t[-1])
        x, y = float(sol.y[0][-1]), float(sol.y[1][-1])
        end_reason = "converged" if is_converged(x, y) else "time_limit"
        converged = end_reason == "converged"
        break
    else:
        if switches > max_switches:
            end_reason = "max_switches"
        elif t >= t_max:
            end_reason = "time_limit"

    t_arr = np.concatenate(ts) if ts else np.array([0.0])
    x_arr = np.concatenate(xs) if xs else np.array([x0])
    y_arr = np.concatenate(ys) if ys else np.array([y0])
    events.sort(key=lambda e: e.time)
    if obs is not None:
        obs.add_span("fluid.reference.simulate",
                     _time.monotonic() - wall_start)  # repro-lint: disable=wall-clock -- obs span wall-time
        record_fluid_obs(obs, "fluid.reference", p, events, converged,
                         float(t_arr[-1]), x_arr)
    return FluidTrajectory(
        params=p,
        mode=mode,
        t=t_arr,
        x=x_arr,
        y=y_arr,
        events=events,
        converged=converged,
        end_reason=end_reason,
    )


def _integrate_pinned_full(
    p: NormalizedParams,
    t: float,
    y: float,
    t_max: float,
    ts: list[np.ndarray],
    xs: list[np.ndarray],
    ys: list[np.ndarray],
    events: list[FluidEvent],
) -> float:
    """Integrate the full-buffer pinned phase; returns the unpin time."""
    x_full = p.buffer_size - p.q0
    events.append(FluidEvent(t, "buffer_full", x_full, y))
    fld = pinned_full_field(p)

    def drain_event(tt: float, s: np.ndarray) -> float:
        return s[0]

    drain_event.terminal = True
    drain_event.direction = -1.0

    sol = solve_ivp(fld, (t, t_max), [y], events=[drain_event], rtol=1e-9,
                    atol=p.capacity * 1e-12)
    ts.append(sol.t)
    xs.append(np.full_like(sol.t, x_full))
    ys.append(sol.y[0])
    return float(sol.t[-1])


def _integrate_pinned_empty(
    p: NormalizedParams,
    t: float,
    y: float,
    t_max: float,
    ts: list[np.ndarray],
    xs: list[np.ndarray],
    ys: list[np.ndarray],
    events: list[FluidEvent],
) -> float:
    """Integrate the empty-buffer pinned phase (warm-up law)."""
    x_empty = -p.q0
    events.append(FluidEvent(t, "buffer_empty", x_empty, y))
    # dy/dt = a q0 is exactly solvable: y reaches 0 after -y/(a q0).
    duration = min(-y / (p.a * p.q0), t_max - t)
    n = 32
    t_lin = np.linspace(t, t + duration, n)
    ts.append(t_lin)
    xs.append(np.full(n, x_empty))
    ys.append(y + p.a * p.q0 * (t_lin - t))
    return t + duration

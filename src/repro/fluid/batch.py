"""Vectorized ensemble integration of the switched BCN fluid model.

The paper's analysis is ensemble-shaped: phase portraits are bundles of
orbits from many initial conditions, the Case-1 limit-cycle search scans
a return map over a grid of entry ordinates, and validation sweeps a
parameter grid.  :func:`repro.fluid.integrate.simulate_fluid` integrates
one trajectory at a time through per-segment ``solve_ivp`` restarts —
accurate, but the per-call overhead dominates when hundreds of orbits
share the same parameters.

This module advances **M trajectories at once** as ``(M,)`` NumPy state
vectors with a fixed-step RK4 core:

* both region laws are evaluated batched and blended by a per-row region
  mask on ``s = x + k y`` (the feedback is ``sigma = -s``);
* switching-line crossings, buffer crossings and extrema of ``x`` are
  refined per-row on the step's cubic Hermite dense output (every event
  functional is linear in ``(x, y)``, so its restriction to one step is
  an explicit cubic in the step fraction), making events event-accurate
  rather than grid-accurate at no extra derivative evaluations;
* ``"physical"`` mode pins rows at the full/empty buffer using the exact
  closed-form pinned dynamics (the same laws
  :func:`repro.fluid.model.pinned_full_field` /
  :func:`repro.fluid.model.pinned_empty_field` encode);
* per-row event recording and end-state bookkeeping are compatible with
  :class:`repro.fluid.integrate.FluidTrajectory` (see
  :meth:`BatchFluidResult.trajectory`).

Accuracy contract (differentially tested against ``simulate_fluid`` in
``tests/property/test_prop_batch_fluid.py``): with the default
``dt_scale = 0.02`` (≈300 RK4 steps per oscillation period) batch states
track the ``solve_ivp`` reference to better than ``1e-3`` of the natural
scales ``(q0, C)`` over several oscillation rounds, and switch counts
and buffer-hit flags are identical away from grazing geometries.  The
batched return map matches the scalar one to ``≲1e-4`` relative.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Literal

import numpy as np

from ..core.parameters import BCNParams, NormalizedParams
from .integrate import (_CONVERGENCE_RTOL, FluidEvent, FluidTrajectory,
                        record_fluid_obs)
from .model import as_normalized

__all__ = [
    "BatchFluidResult",
    "simulate_fluid_batch",
    "batch_return_map",
    "batched_derivative_fn",
    "switched_derivatives",
    "default_time_step",
    "default_horizon",
]

Mode = Literal["linearized", "nonlinear", "physical"]

#: Safeguarded-Newton iterations for event refinement on the dense output.
_REFINE_ITERS = 16
#: Hard cap on grid steps, guarding against absurd ``t_max / dt`` ratios.
_MAX_STEPS = 2_000_000

_REASONS = ("running", "converged", "time_limit", "max_switches")


# ---------------------------------------------------------------------------
# batched vector fields
# ---------------------------------------------------------------------------

def batched_derivative_fn(
    params: NormalizedParams | BCNParams, mode: Mode = "nonlinear"
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Return ``f(x, y, dec_mask) -> (dx/dt, dy/dt)`` for row vectors.

    Rows where ``dec_mask`` is True follow the rate-decrease law
    (``-b (y + C) s``, or its linearisation ``-b C s`` when
    ``mode="linearized"``); the rest follow the increase law ``-a s``.
    Both laws share ``dx/dt = y``, so the blend is a single
    ``np.where`` on the ``dy`` coefficient.
    """
    p = as_normalized(params)
    a, b, c, k = p.a, p.b, p.capacity, p.k
    linear_dec = mode == "linearized"

    def derivs(x: np.ndarray, y: np.ndarray, dec: np.ndarray):
        s = x + k * y
        if linear_dec:
            coef = np.where(dec, b * c, a)
        else:
            coef = np.where(dec, b * (y + c), a)
        return y, -coef * s

    return derivs


def switched_derivatives(
    params: NormalizedParams | BCNParams,
    states: np.ndarray,
    *,
    mode: Mode = "nonlinear",
    on_line: str = "decrease",
) -> np.ndarray:
    """Batched evaluation of the switched field at ``(..., 2)`` states.

    ``on_line`` resolves points exactly on the switching line:
    ``"decrease"`` assigns them to the decrease region (the
    :func:`repro.fluid.model.full_field` convention) and ``"flow"``
    resolves by the crossing direction ``sign(y)`` (the integrator's
    convention).  Returns derivatives with the same ``(..., 2)`` shape.
    """
    p = as_normalized(params)
    states = np.asarray(states, dtype=float)
    x, y = states[..., 0], states[..., 1]
    s = x + p.k * y
    if on_line == "decrease":
        dec = s >= 0.0
    elif on_line == "flow":
        dec = (s > 0.0) | ((s == 0.0) & (y > 0.0))
    else:
        raise ValueError(f"unknown on_line rule {on_line!r}")
    derivs = batched_derivative_fn(p, "linearized" if mode == "linearized" else "nonlinear")
    dx, dy = derivs(x, y, dec)
    return np.stack([np.broadcast_to(dx, s.shape), dy], axis=-1)


# ---------------------------------------------------------------------------
# step-size / horizon heuristics
# ---------------------------------------------------------------------------

def _fastest_rate(p: NormalizedParams) -> float:
    """Upper bound on ``|lambda|`` and the angular frequency per region.

    For a focus the eigenvalue modulus is exactly ``sqrt(n)``; for a
    node it is bounded by ``k n`` (sum of roots).  The max over both
    regions bounds how fast any solution component evolves.
    """
    rates = []
    for n in (p.n_increase, p.n_decrease):
        rates.append(max(math.sqrt(n), p.k * n))
    return max(rates)


def default_time_step(
    params: NormalizedParams | BCNParams, *, dt_scale: float = 0.02
) -> float:
    """Fixed RK4 step: ``dt_scale`` of the fastest natural timescale.

    The default 0.02 gives ≈300 steps per oscillation period, i.e. a
    local truncation error of order ``(omega dt)^5 ≈ 2e-9`` per step.
    """
    p = as_normalized(params)
    return dt_scale / _fastest_rate(p)


def _slowest_decay(p: NormalizedParams) -> float:
    """Smallest ``|Re lambda|`` over both regions (slowest settling)."""
    decays = []
    for n in (p.n_increase, p.n_decrease):
        kn = p.k * n
        disc = kn * kn - 4.0 * n
        if disc < 0.0:
            decays.append(kn / 2.0)
        else:
            decays.append((kn - math.sqrt(disc)) / 2.0)
    return min(decays)


def default_horizon(
    params: NormalizedParams | BCNParams,
    *,
    convergence_rtol: float = _CONVERGENCE_RTOL,
    max_switches: int | None = None,
) -> float:
    """Heuristic ``t_max`` long enough to settle into the convergence ball.

    ``log(1/rtol) / slowest_decay`` seconds; when ``max_switches`` is
    given the horizon is additionally capped at the time for that many
    half-turns of the slowest spiral (what a portrait orbit can use).
    """
    p = as_normalized(params)
    horizon = math.log(1.0 / convergence_rtol) / _slowest_decay(p)
    if max_switches is not None:
        betas = []
        for n in (p.n_increase, p.n_decrease):
            disc = 4.0 * n - (p.k * n) ** 2
            if disc > 0.0:
                betas.append(math.sqrt(disc) / 2.0)
        if betas:
            horizon = min(horizon, (max_switches + 2) * math.pi / min(betas))
    return horizon


# ---------------------------------------------------------------------------
# RK4 + bisection primitives
# ---------------------------------------------------------------------------

def _rk4(derivs, x, y, dec, h):
    """One classical RK4 step of (per-row) size ``h`` with frozen masks."""
    k1x, k1y = derivs(x, y, dec)
    k2x, k2y = derivs(x + 0.5 * h * k1x, y + 0.5 * h * k1y, dec)
    k3x, k3y = derivs(x + 0.5 * h * k2x, y + 0.5 * h * k2y, dec)
    k4x, k4y = derivs(x + h * k3x, y + h * k3y, dec)
    sixth = h / 6.0
    return (
        x + sixth * (k1x + 2.0 * (k2x + k3x) + k4x),
        y + sixth * (k1y + 2.0 * (k2y + k3y) + k4y),
    )


def _refine_event(derivs, x0, y0, dec, h, x1, y1, alpha, beta, gamma=0.0):
    """Refine the zero of ``alpha x + beta y + gamma`` along one step.

    ``(x0, y0)`` and ``(x1, y1)`` are the step endpoints (the latter
    already computed by the caller's RK4 step of size ``h``).  The
    functional must change sign across the step.  The step's cubic
    Hermite dense output makes the functional an explicit cubic in the
    step fraction ``theta``, whose root is located by Newton iterations
    safeguarded by a shrinking bisection bracket — no RK4 sub-step
    re-evaluations.  Returns ``(theta, x, y)`` with the dense-output
    state at the crossing (interpolation error ``O(h^4)``, matching the
    RK4 order).  All arguments are row vectors of the refined subset.
    """
    f0x, f0y = derivs(x0, y0, dec)
    f1x, f1y = derivs(x1, y1, dec)
    u0 = alpha * x0 + beta * y0 + gamma
    u1 = alpha * x1 + beta * y1 + gamma
    d0 = h * (alpha * f0x + beta * f0y)
    d1 = h * (alpha * f1x + beta * f1y)
    # power-basis coefficients of the Hermite cubic g(theta)
    c0 = u0
    c1 = d0
    c2 = 3.0 * (u1 - u0) - 2.0 * d0 - d1
    c3 = 2.0 * (u0 - u1) + d0 + d1
    lo = np.zeros_like(u0)
    hi = np.ones_like(u0)
    g_lo = u0
    b2 = 2.0 * c2
    b3 = 3.0 * c3
    with np.errstate(divide="ignore", invalid="ignore"):
        theta = np.clip(u0 / (u0 - u1), 0.0, 1.0)
        theta = np.where(np.isfinite(theta), theta, 0.5)
        for _ in range(_REFINE_ITERS):
            g = ((c3 * theta + c2) * theta + c1) * theta + c0
            same = g_lo * g > 0.0
            lo = np.where(same, theta, lo)
            g_lo = np.where(same, g, g_lo)
            hi = np.where(same, hi, theta)
            newton = theta - g / ((b3 * theta + b2) * theta + c1)
            inside = (newton > lo) & (newton < hi)
            theta = np.where(inside, newton, 0.5 * (lo + hi))
    # dense-output state at the crossing
    t2 = theta * theta
    om = 1.0 - theta
    h00 = (1.0 + 2.0 * theta) * om * om
    h10 = theta * om * om
    h01 = t2 * (3.0 - 2.0 * theta)
    h11 = t2 * (theta - 1.0)
    xt = h00 * x0 + h10 * (h * f0x) + h01 * x1 + h11 * (h * f1x)
    yt = h00 * y0 + h10 * (h * f0y) + h01 * y1 + h11 * (h * f1y)
    return theta, xt, yt


# ---------------------------------------------------------------------------
# result container
# ---------------------------------------------------------------------------

@dataclass
class BatchFluidResult:
    """Ensemble integration result: M trajectories on a shared time grid.

    Attributes
    ----------
    t:
        Shared sample grid, shape ``(n_samples,)``.
    x, y:
        Sampled states, shape ``(n_samples, M)``; rows that froze
        (converged / hit ``max_switches``) hold their final state for
        the remaining samples.
    events:
        Per-row chronological :class:`FluidEvent` lists.
    converged, end_reason, switch_counts:
        Per-row verdicts mirroring :class:`FluidTrajectory` semantics.
    t_end, x_end, y_end:
        Exact per-row end time/state (event-accurate when a row froze at
        a switching crossing).
    kernel_seconds:
        Wall time spent inside the stepping kernel — the number the
        runner instrumentation reports as per-point kernel time.
    """

    params: NormalizedParams
    mode: Mode
    t: np.ndarray
    x: np.ndarray
    y: np.ndarray
    events: list[list[FluidEvent]]
    converged: np.ndarray
    end_reason: list[str]
    switch_counts: np.ndarray
    t_end: np.ndarray
    x_end: np.ndarray
    y_end: np.ndarray
    kernel_seconds: float = 0.0

    @property
    def n_rows(self) -> int:
        return self.x.shape[1]

    def hit_buffer_full(self) -> np.ndarray:
        return np.array(
            [any(e.kind == "buffer_full" for e in evs) for evs in self.events]
        )

    def hit_buffer_empty(self) -> np.ndarray:
        return np.array(
            [any(e.kind == "buffer_empty" for e in evs) for evs in self.events]
        )

    def extrema(self, row: int) -> list[tuple[float, float]]:
        """Event-accurate ``(t, x)`` extrema of one row."""
        return [(e.time, e.x) for e in self.events[row] if e.kind == "extremum"]

    def trajectory(self, row: int) -> FluidTrajectory:
        """Materialise one row as a :class:`FluidTrajectory`."""
        mask = self.t < self.t_end[row]
        t = np.append(self.t[mask], self.t_end[row])
        x = np.append(self.x[mask, row], self.x_end[row])
        y = np.append(self.y[mask, row], self.y_end[row])
        return FluidTrajectory(
            params=self.params,
            mode=self.mode,
            t=t,
            x=x,
            y=y,
            events=sorted(self.events[row], key=lambda e: e.time),
            converged=bool(self.converged[row]),
            end_reason=self.end_reason[row],
        )

    def trajectories(self) -> list[FluidTrajectory]:
        return [self.trajectory(i) for i in range(self.n_rows)]


# ---------------------------------------------------------------------------
# the ensemble integrator
# ---------------------------------------------------------------------------

class _BatchState:
    """Mutable per-row integration state shared by the stepping kernel."""

    def __init__(self, p: NormalizedParams, x0, y0, mode, max_switches,
                 convergence_rtol):
        x0 = np.atleast_1d(np.asarray(x0, dtype=float))
        y0 = np.atleast_1d(np.asarray(y0, dtype=float))
        self.x, self.y = np.broadcast_arrays(x0, y0)
        self.x = self.x.astype(float).copy()
        self.y = self.y.astype(float).copy()
        m = self.x.size
        self.p = p
        self.mode = mode
        self.physical = mode == "physical"
        self.max_switches = max_switches
        self.convergence_rtol = convergence_rtol
        self.x_full = p.buffer_size - p.q0
        self.x_empty = -p.q0
        s = self.x + p.k * self.y
        self.dec = (s > 0.0) | ((s == 0.0) & (self.y > 0.0))
        self.alive = np.ones(m, dtype=bool)
        self.reason = np.zeros(m, dtype=np.int8)  # index into _REASONS
        self.switches = np.zeros(m, dtype=np.int64)
        self.pinned = np.zeros(m, dtype=np.int8)  # 0 none, 1 full, 2 empty
        self.pin_t = np.zeros(m)
        self.pin_y = np.zeros(m)
        self.unpin_t = np.full(m, np.inf)
        self.t_end = np.zeros(m)
        self.x_end = self.x.copy()
        self.y_end = self.y.copy()
        self.events: list[list[FluidEvent]] = [[] for _ in range(m)]

    def is_converged(self, x, y):
        p = self.p
        return (np.abs(x) / p.q0 <= self.convergence_rtol) & (
            np.abs(y) / p.capacity <= self.convergence_rtol
        )

    def freeze(self, rows, reason_idx, t, x, y):
        self.alive[rows] = False
        self.reason[rows] = reason_idx
        self.t_end[rows] = t
        self.x_end[rows] = x
        self.y_end[rows] = y
        self.x[rows] = x
        self.y[rows] = y

    def record(self, rows, times, kind, xs, ys):
        for r, t, xv, yv in zip(
            np.atleast_1d(rows), np.atleast_1d(times),
            np.atleast_1d(xs), np.atleast_1d(ys)
        ):
            self.events[int(r)].append(
                FluidEvent(float(t), kind, float(xv), float(yv))
            )

    # -- pinned-phase closed forms -----------------------------------------

    def pin_full(self, rows, t_pin, y_pin, t_max):
        p = self.p
        self.record(rows, t_pin, "buffer_full", np.full_like(y_pin, self.x_full), y_pin)
        self.pinned[rows] = 1
        self.pin_t[rows] = t_pin
        self.pin_y[rows] = y_pin
        duration = np.log((y_pin + p.capacity) / p.capacity) / (p.b * self.x_full)
        self.unpin_t[rows] = np.minimum(t_pin + duration, t_max)
        self.x[rows] = self.x_full
        self.y[rows] = y_pin

    def pin_empty(self, rows, t_pin, y_pin, t_max):
        p = self.p
        self.record(rows, t_pin, "buffer_empty", np.full_like(y_pin, self.x_empty), y_pin)
        self.pinned[rows] = 2
        self.pin_t[rows] = t_pin
        self.pin_y[rows] = y_pin
        duration = -y_pin / (p.a * p.q0)
        self.unpin_t[rows] = np.minimum(t_pin + duration, t_max)
        self.x[rows] = self.x_empty
        self.y[rows] = y_pin

    def pinned_state_at(self, rows, t):
        """Closed-form pinned state of ``rows`` at absolute time ``t``."""
        p = self.p
        kind = self.pinned[rows]
        dt = t - self.pin_t[rows]
        y_full = (self.pin_y[rows] + p.capacity) * np.exp(
            -p.b * self.x_full * dt
        ) - p.capacity
        y_empty = self.pin_y[rows] + p.a * p.q0 * dt
        x = np.where(kind == 1, self.x_full, self.x_empty)
        y = np.where(kind == 1, y_full, y_empty)
        return x, y


def _advance(st: _BatchState, derivs, rows, t0, h, t_max):
    """Advance ``rows`` (alive, unpinned) by per-row step ``h`` from ``t0``.

    Handles at most one terminal event (switching crossing or, in
    physical mode, a buffer crossing) per call and recurses on the
    remainder of the step, mirroring the reference integrator's
    restart-at-event semantics.
    """
    if rows.size == 0:
        return
    p = st.p
    t0 = np.broadcast_to(np.asarray(t0, dtype=float), rows.shape)
    h = np.broadcast_to(np.asarray(h, dtype=float), rows.shape)
    x0, y0 = st.x[rows], st.y[rows]
    dec = st.dec[rows]
    rsign = np.where(dec, 1.0, -1.0)
    x1, y1 = _rk4(derivs, x0, y0, dec, h)

    # -- locate the earliest terminal event per row ------------------------
    s1 = x1 + p.k * y1
    line_tol = 1e-12 * (np.abs(x1) + p.k * np.abs(y1) + p.q0)
    theta = np.ones(rows.size)
    xe, ye = x1.copy(), y1.copy()
    term = np.zeros(rows.size, dtype=np.int8)  # 0 none, 1 switch, 2 full, 3 empty

    candidates: list[tuple[int, np.ndarray, float, float, float]] = [
        (1, s1 * rsign < -line_tol, 1.0, p.k, 0.0)
    ]
    if st.physical:
        candidates.append(
            (2, (x0 < st.x_full) & (x1 >= st.x_full), 1.0, 0.0, -st.x_full)
        )
        candidates.append(
            (3, (x0 > st.x_empty) & (x1 <= st.x_empty), 1.0, 0.0, -st.x_empty)
        )
    for code, hit, ga, gb, gc in candidates:
        idx = np.nonzero(hit)[0]
        if idx.size == 0:
            continue
        th, xt, yt = _refine_event(
            derivs, x0[idx], y0[idx], dec[idx], h[idx], x1[idx], y1[idx],
            ga, gb, gc,
        )
        earlier = th < theta[idx]
        sel = idx[earlier]
        theta[sel] = th[earlier]
        xe[sel] = xt[earlier]
        ye[sel] = yt[earlier]
        term[sel] = code

    t_ev = t0 + theta * h

    # -- non-terminal events on the kept part of the step ------------------
    ext = np.nonzero(y0 * ye < 0.0)[0]
    if ext.size:
        th, xt, yt = _refine_event(
            derivs, x0[ext], y0[ext], dec[ext], (h * theta)[ext],
            xe[ext], ye[ext], 0.0, 1.0,
        )
        st.record(rows[ext], t0[ext] + th * (h * theta)[ext], "extremum", xt, yt)
    if not st.physical:
        for kind, hit in (
            ("buffer_full", (x0 < st.x_full) & (xe >= st.x_full)),
            ("buffer_empty", (x0 > st.x_empty) & (xe <= st.x_empty)),
        ):
            idx = np.nonzero(hit)[0]
            if idx.size == 0:
                continue
            lvl = st.x_full if kind == "buffer_full" else st.x_empty
            th, xt, yt = _refine_event(
                derivs, x0[idx], y0[idx], dec[idx], (h * theta)[idx],
                xe[idx], ye[idx], 1.0, 0.0, -lvl,
            )
            st.record(rows[idx], t0[idx] + th * (h * theta)[idx], kind, xt, yt)

    # -- commit non-terminal rows ------------------------------------------
    plain = term == 0
    st.x[rows[plain]] = xe[plain]
    st.y[rows[plain]] = ye[plain]

    # -- switching crossings -----------------------------------------------
    sw = np.nonzero(term == 1)[0]
    if sw.size:
        st.record(rows[sw], t_ev[sw], "switch", xe[sw], ye[sw])
        st.switches[rows[sw]] += 1
        over = st.switches[rows[sw]] > st.max_switches
        conv = st.is_converged(xe[sw], ye[sw]) & ~over
        stop = over | conv
        if np.any(stop):
            idx = sw[stop]
            st.freeze(rows[idx], np.where(over[stop], 3, 1).astype(np.int8),
                      t_ev[idx], xe[idx], ye[idx])
        go = sw[~stop]
        if go.size:
            st.dec[rows[go]] = ye[go] > 0.0
            st.x[rows[go]] = xe[go]
            st.y[rows[go]] = ye[go]
            _advance(st, derivs, rows[go], t_ev[go], h[go] * (1.0 - theta[go]),
                     t_max)

    # -- buffer pinning (physical mode) ------------------------------------
    for code, pin in ((2, st.pin_full), (3, st.pin_empty)):
        hit = np.nonzero(term == code)[0]
        if hit.size == 0:
            continue
        pin(rows[hit], t_ev[hit], ye[hit], t_max)
        # unpin inside the current step where the pinned phase is short
        t_step_end = t0[hit] + h[hit]
        early = st.unpin_t[rows[hit]] <= t_step_end
        if np.any(early):
            idx = rows[hit[early]]
            t_up = st.unpin_t[idx]
            x_pin = st.x_full if code == 2 else st.x_empty
            st.x[idx] = x_pin
            st.y[idx] = 0.0
            st.pinned[idx] = 0
            st.unpin_t[idx] = np.inf
            st.dec[idx] = x_pin > 0.0
            _advance(st, derivs, idx, t_up, t_step_end[early] - t_up, t_max)


def simulate_fluid_batch(
    params: NormalizedParams | BCNParams,
    x0,
    y0=0.0,
    *,
    t_max: float = 10.0,
    mode: Mode = "nonlinear",
    max_switches: int = 500,
    dt: float | None = None,
    dt_scale: float = 0.02,
    convergence_rtol: float = _CONVERGENCE_RTOL,
    obs=None,
    fluid_method: str = "numpy",
    precision: str = "float64",
) -> BatchFluidResult:
    """Integrate M trajectories of the switched BCN fluid model at once.

    Parameters mirror :func:`repro.fluid.integrate.simulate_fluid`;
    ``x0`` and ``y0`` are broadcast to the ensemble shape ``(M,)``.
    ``dt`` fixes the RK4 step directly; otherwise it is derived from the
    fastest natural rate via :func:`default_time_step` with ``dt_scale``.
    ``obs`` (an :class:`repro.obs.Observability` handle) reports a
    ``fluid.batch.kernel`` span and per-row events under
    ``engine="fluid.batch"`` with the row index attached.

    ``fluid_method`` selects the stepping implementation: ``"numpy"``
    (this module's vectorized loop, the default), ``"compiled"`` (the
    :mod:`repro.kernels` backend — numba or C — falling back to numpy
    when neither is available) or ``"auto"`` (compiled when available).
    ``precision`` (``"float64"``/``"float32"``) selects the state dtype
    for ensemble work; the numpy path integrates in float64 and casts,
    so tiers stay deterministic.

    Per-row semantics match the reference integrator: convergence is
    checked at the start and after each switching crossing (not
    mid-flight), ``max_switches`` freezes a row at its
    ``max_switches + 1``-th crossing, and in ``"physical"`` mode rows
    pin at the buffer limits under the exact closed-form pinned laws.
    """
    if fluid_method not in ("numpy", "compiled", "auto"):
        raise ValueError(f"unknown fluid_method {fluid_method!r}")
    if precision not in ("float64", "float32"):
        raise ValueError(f"unknown precision {precision!r}")
    if fluid_method in ("compiled", "auto"):
        from ..kernels import get_backend, simulate_fluid_batch_compiled

        if get_backend().compiled:
            return simulate_fluid_batch_compiled(
                params, x0, y0, t_max=t_max, mode=mode,
                max_switches=max_switches, dt=dt, dt_scale=dt_scale,
                convergence_rtol=convergence_rtol, obs=obs,
                precision=precision,
            )
        # no compiled backend: fall through to the numpy loop below
    p = as_normalized(params)
    if dt is None:
        dt = default_time_step(p, dt_scale=dt_scale)
    n_steps = max(1, math.ceil(t_max / dt))
    if n_steps > _MAX_STEPS:
        raise ValueError(
            f"t_max/dt = {n_steps} exceeds {_MAX_STEPS} steps; "
            "pass a larger dt or a shorter horizon"
        )
    dt = t_max / n_steps

    st = _BatchState(p, x0, y0, mode, max_switches, convergence_rtol)
    m = st.x.size
    derivs = batched_derivative_fn(p, mode)

    t_grid = np.linspace(0.0, t_max, n_steps + 1)
    xs = np.empty((n_steps + 1, m))
    ys = np.empty((n_steps + 1, m))
    started = time.perf_counter()  # repro-lint: disable=wall-clock -- kernel span timing

    # Rows already inside the convergence ball never start integrating.
    conv0 = np.nonzero(st.is_converged(st.x, st.y))[0]
    if conv0.size:
        st.freeze(conv0, 1, 0.0, st.x[conv0], st.y[conv0])
    # Physical warm-up: rows starting pinned at the empty buffer.
    if st.physical:
        pin0 = np.nonzero(st.alive & (st.x <= st.x_empty) & (st.y < 0.0))[0]
        if pin0.size:
            st.pin_empty(pin0, np.zeros(pin0.size), st.y[pin0], t_max)

    xs[0] = st.x
    ys[0] = st.y
    last = n_steps
    for i in range(n_steps):
        t0, t1 = t_grid[i], t_grid[i + 1]
        active = np.nonzero(st.alive & (st.pinned == 0))[0]
        _advance(st, derivs, active, t0, t1 - t0, t_max)
        if st.physical:
            unpin = np.nonzero(st.alive & (st.pinned != 0)
                               & (st.unpin_t <= t1) & (st.unpin_t < t_max))[0]
            if unpin.size:
                x_pin = np.where(st.pinned[unpin] == 1, st.x_full, st.x_empty)
                t_up = st.unpin_t[unpin]
                st.x[unpin] = x_pin
                st.y[unpin] = 0.0
                st.pinned[unpin] = 0
                st.unpin_t[unpin] = np.inf
                st.dec[unpin] = x_pin > 0.0
                _advance(st, derivs, unpin, t_up, t1 - t_up, t_max)
            still = np.nonzero(st.alive & (st.pinned != 0))[0]
            if still.size:
                px, py = st.pinned_state_at(still, t1)
                st.x[still] = px
                st.y[still] = py
        xs[i + 1] = st.x
        ys[i + 1] = st.y
        if not st.alive.any():
            last = i + 1
            break

    # Finalise rows that ran to the horizon.
    open_rows = np.nonzero(st.alive)[0]
    if open_rows.size:
        conv = st.is_converged(st.x[open_rows], st.y[open_rows])
        # pinned rows at the horizon are time-limited, never converged
        conv &= st.pinned[open_rows] == 0
        st.freeze(open_rows, np.where(conv, 1, 2).astype(np.int8), t_max,
                  st.x[open_rows], st.y[open_rows])
    kernel_seconds = time.perf_counter() - started  # repro-lint: disable=wall-clock -- kernel span timing

    for evs in st.events:
        evs.sort(key=lambda e: e.time)
    if obs is not None and obs.enabled:
        obs.add_span("fluid.batch.kernel", kernel_seconds)
        t_used = t_grid[: last + 1]
        for row in range(m):
            # Frozen rows repeat their end state on the tail of the grid;
            # only genuine samples feed the histograms.
            live = t_used <= st.t_end[row]
            record_fluid_obs(obs, "fluid.batch", p, st.events[row],
                             bool(st.reason[row] == 1), float(st.t_end[row]),
                             xs[: last + 1][live, row], row=row)
    if precision == "float32":
        xs = xs.astype(np.float32)
        ys = ys.astype(np.float32)
    return BatchFluidResult(
        params=p,
        mode=mode,
        t=t_grid[: last + 1],
        x=xs[: last + 1],
        y=ys[: last + 1],
        events=st.events,
        converged=st.reason == 1,
        end_reason=[_REASONS[r] for r in st.reason],
        switch_counts=st.switches,
        t_end=st.t_end,
        x_end=st.x_end,
        y_end=st.y_end,
        kernel_seconds=kernel_seconds,
    )


# ---------------------------------------------------------------------------
# batched Poincaré return map
# ---------------------------------------------------------------------------

def batch_return_map(
    params: NormalizedParams | BCNParams,
    ys,
    *,
    mode: str = "nonlinear",
    t_max: float | None = None,
    dt: float | None = None,
    dt_scale: float = 0.02,
) -> np.ndarray:
    """Batched Poincaré return map: all entry ordinates in one integration.

    Starts every row at ``(-k y, y)`` on the upper switching half-line
    and integrates the whole ensemble until each row has re-crossed the
    line twice (one decrease pass, one increase pass), with the second
    crossing refined by bisection.  Returns the exit ordinates
    ``P(y)`` as an array aligned with ``ys``.

    Semantically equivalent to mapping
    :func:`repro.core.limit_cycle.return_map` over ``ys`` (differential
    tolerance ``≲1e-4`` relative at the default step), but one
    vectorized integration instead of ``2 len(ys)`` ``solve_ivp`` calls.
    """
    from ..core.eigen import Region, region_eigenstructure
    from ..core.phase_plane import PaperCase, classify_case

    p = as_normalized(params)
    if classify_case(p) is not PaperCase.CASE1:
        raise ValueError("the return map requires Case 1 (both regions spiral)")
    ys = np.atleast_1d(np.asarray(ys, dtype=float))
    if np.any(ys <= 0.0):
        raise ValueError("return map is defined on the upper half-line y > 0")
    if mode != "linearized" and np.any(ys >= p.capacity):
        raise ValueError("entry ordinates must satisfy y < C (positive rate)")
    if t_max is None:
        betas = [
            region_eigenstructure(p, r).beta
            for r in (Region.DECREASE, Region.INCREASE)
        ]
        t_max = 20.0 * math.pi / min(betas)
    if dt is None:
        dt = default_time_step(p, dt_scale=dt_scale)
    n_steps = max(1, math.ceil(t_max / dt))
    if n_steps > _MAX_STEPS:
        raise ValueError("return-map horizon needs too many steps; raise dt")
    dt = t_max / n_steps

    derivs = batched_derivative_fn(
        p, "linearized" if mode == "linearized" else "nonlinear"
    )
    m = ys.size
    x = -p.k * ys
    y = ys.copy()
    dec = np.ones(m, dtype=bool)  # enter through the decrease region
    crossings = np.zeros(m, dtype=np.int64)
    running = np.ones(m, dtype=bool)
    exit_y = np.full(m, np.nan)

    t = 0.0
    for _ in range(n_steps):
        rows = np.nonzero(running)[0]
        if rows.size == 0:
            break
        x0, y0 = x[rows], y[rows]
        sub_dec = dec[rows]
        rsign = np.where(sub_dec, 1.0, -1.0)
        x1, y1 = _rk4(derivs, x0, y0, sub_dec, dt)
        s1 = x1 + p.k * y1
        line_tol = 1e-12 * (np.abs(x1) + p.k * np.abs(y1) + p.q0)
        hit = np.nonzero(s1 * rsign < -line_tol)[0]
        if hit.size:
            th, xt, yt = _refine_event(
                derivs, x0[hit], y0[hit], sub_dec[hit],
                np.full(hit.size, dt), x1[hit], y1[hit], 1.0, p.k,
            )
            cross_rows = rows[hit]
            crossings[cross_rows] += 1
            first = crossings[cross_rows] == 1
            done = crossings[cross_rows] >= 2
            # first crossing: flip region, finish the step in the new law
            cont = cross_rows[first]
            if cont.size:
                dec[cont] = yt[first] > 0.0
                x[cont] = xt[first]
                y[cont] = yt[first]
                xr, yr = _rk4(
                    derivs, xt[first], yt[first], dec[cont],
                    dt * (1.0 - th[first]),
                )
                x[cont] = xr
                y[cont] = yr
            fin = cross_rows[done]
            if fin.size:
                exit_y[fin] = yt[done]
                running[fin] = False
        keep = np.ones(rows.size, dtype=bool)
        keep[hit] = False
        x[rows[keep]] = x1[keep]
        y[rows[keep]] = y1[keep]
        t += dt

    if running.any():
        raise RuntimeError(
            f"{int(running.sum())} return-map rows did not re-cross the "
            f"switching line twice within t_max={t_max:.3g}"
        )
    return exit_y

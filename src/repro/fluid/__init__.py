"""Fluid-flow ODE substrate for the BCN model.

Vector fields (:mod:`.model`), the event-accurate piecewise
integrator (:mod:`.integrate`) and the vectorized ensemble kernel
(:mod:`.batch`) for the switched BCN fluid model in linearised,
full-nonlinear and physically-constrained modes.
"""

from .batch import (
    BatchFluidResult,
    batch_return_map,
    batched_derivative_fn,
    default_horizon,
    default_time_step,
    simulate_fluid_batch,
    switched_derivatives,
)
from .delay import DelayedTrajectory, critical_delay, simulate_delayed
from .integrate import FluidEvent, FluidTrajectory, simulate_fluid, solver_limits
from .model import (
    decrease_field,
    full_field,
    increase_field,
    linearized_decrease_field,
    linearized_increase_field,
    pinned_empty_field,
    pinned_full_field,
)

__all__ = [
    "simulate_fluid",
    "solver_limits",
    "FluidTrajectory",
    "FluidEvent",
    "simulate_fluid_batch",
    "BatchFluidResult",
    "batch_return_map",
    "batched_derivative_fn",
    "switched_derivatives",
    "default_time_step",
    "default_horizon",
    "increase_field",
    "decrease_field",
    "linearized_increase_field",
    "linearized_decrease_field",
    "full_field",
    "pinned_full_field",
    "pinned_empty_field",
    "simulate_delayed",
    "DelayedTrajectory",
    "critical_delay",
]

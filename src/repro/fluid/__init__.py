"""Fluid-flow ODE substrate for the BCN model.

Vector fields (:mod:`.model`) and the event-accurate piecewise
integrator (:mod:`.integrate`) for the switched BCN fluid model in
linearised, full-nonlinear and physically-constrained modes.
"""

from .delay import DelayedTrajectory, critical_delay, simulate_delayed
from .integrate import FluidEvent, FluidTrajectory, simulate_fluid
from .model import (
    decrease_field,
    full_field,
    increase_field,
    linearized_decrease_field,
    linearized_increase_field,
    pinned_empty_field,
    pinned_full_field,
)

__all__ = [
    "simulate_fluid",
    "FluidTrajectory",
    "FluidEvent",
    "increase_field",
    "decrease_field",
    "linearized_increase_field",
    "linearized_decrease_field",
    "full_field",
    "pinned_full_field",
    "pinned_empty_field",
    "simulate_delayed",
    "DelayedTrajectory",
    "critical_delay",
]

"""Delayed-feedback BCN fluid model (DDE integration).

The paper argues propagation delay is negligible in DCE (microseconds
against tens of microseconds of queueing) and drops it from the model.
This module keeps it, so the assumption can be *tested*: the rate law
at time ``t`` acts on the congestion measure the switch computed one
feedback delay ``tau`` earlier,

.. math::

    \\dot x(t) = y(t), \\qquad
    \\dot y(t) = \\begin{cases}
        -a\\,s(t-\\tau) & s(t-\\tau) < 0 \\\\
        -b\\,(y(t) + C)\\,s(t-\\tau) & s(t-\\tau) > 0
    \\end{cases}

with ``s = x + k y``.  Integration is by the method of steps: fixed-step
RK4 whose delayed argument is linearly interpolated from the stored
history (requires ``tau >= step``).

Alongside the integrator, :func:`critical_delay` locates the empirical
stability boundary by bisection on the amplitude trend — the quantity
to compare against the per-subsystem Nyquist margins of
:mod:`repro.baselines.linear_analysis` (the switched system's true
boundary need not coincide with either loop's margin).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.parameters import BCNParams, NormalizedParams
from .model import as_normalized

__all__ = ["DelayedTrajectory", "simulate_delayed", "critical_delay"]


@dataclass
class DelayedTrajectory:
    """Result of a delayed-feedback integration."""

    params: NormalizedParams
    tau: float
    t: np.ndarray
    x: np.ndarray
    y: np.ndarray

    def amplitude_trend(self) -> float | None:
        """Geometric ratio of successive |x| peaks (None if < 3 peaks)."""
        from ..analysis.metrics import find_peaks

        peaks = [v for _, v in find_peaks(self.t, np.abs(self.x),
                                          min_prominence_frac=0.05)
                 if v > 0]
        if len(peaks) < 3:
            return None
        ratios = [b / a for a, b in zip(peaks, peaks[1:]) if a > 0]
        return float(np.exp(np.mean(np.log(ratios)))) if ratios else None

    def diverged(self) -> bool:
        """Amplitude left the basin (exceeded 100x its initial value)."""
        scale = max(abs(self.x[0]), self.params.q0)
        return bool(np.max(np.abs(self.x)) > 100.0 * scale)

    def classify(self) -> str:
        """``"stable"``, ``"unstable"`` or ``"marginal"``."""
        if self.diverged():
            return "unstable"
        trend = self.amplitude_trend()
        if trend is None:
            return "stable"
        if trend < 0.995:
            return "stable"
        if trend > 1.005:
            return "unstable"
        return "marginal"


def simulate_delayed(
    params: NormalizedParams | BCNParams,
    *,
    tau: float,
    t_max: float,
    x0: float | None = None,
    y0: float = 0.0,
    step: float | None = None,
) -> DelayedTrajectory:
    """Integrate the delayed switched model with RK4 + history lookup.

    Parameters
    ----------
    tau:
        Feedback delay in seconds (must be at least one step).
    step:
        Integration step; defaults to ``min(tau/8, T_fast/200)`` where
        ``T_fast`` is the fastest natural period.
    """
    p = as_normalized(params)
    if tau <= 0:
        raise ValueError("tau must be positive; use simulate_fluid for tau=0")
    if x0 is None:
        x0 = -p.q0
    fastest = math.sqrt(max(p.n_increase, p.n_decrease))
    if step is None:
        step = min(tau / 8.0, (2.0 * math.pi / fastest) / 200.0)
    if step > tau:
        raise ValueError("step must not exceed the delay")

    n_steps = int(math.ceil(t_max / step))
    t = np.empty(n_steps + 1)
    x = np.empty(n_steps + 1)
    y = np.empty(n_steps + 1)
    t[0], x[0], y[0] = 0.0, x0, y0

    a, b, c, k = p.a, p.b, p.capacity, p.k

    def delayed_s(time: float, upto: int) -> float:
        """Interpolated s(time - tau); constant initial history."""
        target = time - tau
        if target <= 0.0:
            return x0 + k * y0
        idx = min(int(target / step), upto - 1)
        frac = (target - t[idx]) / step
        xd = x[idx] + frac * (x[idx + 1] - x[idx])
        yd = y[idx] + frac * (y[idx + 1] - y[idx])
        return xd + k * yd

    def rhs(time: float, xv: float, yv: float, upto: int) -> tuple[float, float]:
        s_delayed = delayed_s(time, upto)
        if s_delayed < 0.0:
            return yv, -a * s_delayed
        return yv, -b * (yv + c) * s_delayed

    for i in range(n_steps):
        ti, xi, yi = t[i], x[i], y[i]
        upto = i if i > 0 else 1
        k1 = rhs(ti, xi, yi, upto)
        k2 = rhs(ti + step / 2, xi + step / 2 * k1[0], yi + step / 2 * k1[1], upto)
        k3 = rhs(ti + step / 2, xi + step / 2 * k2[0], yi + step / 2 * k2[1], upto)
        k4 = rhs(ti + step, xi + step * k3[0], yi + step * k3[1], upto)
        x[i + 1] = xi + step / 6 * (k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0])
        y[i + 1] = yi + step / 6 * (k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1])
        t[i + 1] = ti + step
        if abs(x[i + 1]) > 1e6 * max(abs(x0), p.q0):
            # unambiguous divergence: stop early, truncate arrays
            t, x, y = t[: i + 2], x[: i + 2], y[: i + 2]
            break

    return DelayedTrajectory(params=p, tau=tau, t=t, x=x, y=y)


def critical_delay(
    params: NormalizedParams | BCNParams,
    *,
    tau_lo: float,
    tau_hi: float,
    t_max: float,
    iterations: int = 12,
) -> float:
    """Bisect for the delay at which the oscillation stops decaying.

    ``tau_lo`` must classify stable and ``tau_hi`` unstable; returns the
    midpoint of the final bracket.
    """
    p = as_normalized(params)

    def is_stable(tau: float) -> bool:
        traj = simulate_delayed(p, tau=tau, t_max=t_max)
        return traj.classify() == "stable"

    if not is_stable(tau_lo):
        raise ValueError("tau_lo is not stable; widen the bracket downwards")
    if is_stable(tau_hi):
        raise ValueError("tau_hi is not unstable; widen the bracket upwards")
    lo, hi = tau_lo, tau_hi
    for _ in range(iterations):
        mid = math.sqrt(lo * hi)
        if is_stable(mid):
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)

"""Fluid-flow vector fields of the BCN congestion-control system.

The paper's model (eqs. 4 and 7), in normalised coordinates
``x = q - q0`` and ``y = N r - C`` with ``s = x + k y`` (so the feedback
is ``sigma = -s``):

.. math::

    \\dot x = y, \\qquad
    \\dot y = \\begin{cases}
        -a\\,s & s < 0 \\text{ (rate increase, } \\sigma > 0) \\\\
        -b\\,(y + C)\\,s & s > 0 \\text{ (rate decrease, } \\sigma < 0)
    \\end{cases}

Three field variants are provided:

* :func:`increase_field` / :func:`decrease_field` — the per-region laws
  (the increase law is linear; the decrease law carries the genuine
  nonlinearity ``(y + C)``);
* :func:`linearized_decrease_field` — the decrease law linearised about
  the origin (eq. 9), used to cross-check the closed-form machinery;
* the pinned fields :func:`pinned_full_field` /
  :func:`pinned_empty_field` — the *physical* dynamics while the queue
  saturates at ``B`` (arrivals dropped, switch observes ``dq/dt = 0`` so
  ``sigma = q0 - B``) or at ``0`` (link underutilised, switch feeds back
  ``sigma = q0``, which is exactly the paper's warm-up law).

All fields take ``(t, state)`` in `scipy.integrate.solve_ivp` convention;
``state = (x, y)`` for planar fields and ``state = (y,)`` for pinned ones.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.parameters import BCNParams, NormalizedParams

__all__ = [
    "as_normalized",
    "increase_field",
    "decrease_field",
    "linearized_increase_field",
    "linearized_decrease_field",
    "full_field",
    "pinned_full_field",
    "pinned_empty_field",
]

PlanarField = Callable[[float, np.ndarray], list[float]]


def as_normalized(params: NormalizedParams | BCNParams) -> NormalizedParams:
    """Accept physical or normalised parameters, return normalised."""
    return params.normalized() if isinstance(params, BCNParams) else params


def increase_field(params: NormalizedParams | BCNParams) -> PlanarField:
    """Additive-increase law ``(x', y') = (y, -a (x + k y))``."""
    p = as_normalized(params)
    a, k = p.a, p.k

    def field(t: float, state: np.ndarray) -> list[float]:
        x, y = state
        return [y, -a * (x + k * y)]

    return field


def decrease_field(params: NormalizedParams | BCNParams) -> PlanarField:
    """Multiplicative-decrease law ``(x', y') = (y, -b (y + C)(x + k y))``.

    This is the full nonlinear law of eq. (8); the factor ``y + C``
    (the aggregate rate) makes the decrease strength amplitude-dependent,
    which is what permits genuine isolated limit cycles.
    """
    p = as_normalized(params)
    b, c, k = p.b, p.capacity, p.k

    def field(t: float, state: np.ndarray) -> list[float]:
        x, y = state
        return [y, -b * (y + c) * (x + k * y)]

    return field


def linearized_increase_field(params: NormalizedParams | BCNParams) -> PlanarField:
    """The increase law is already linear; provided for symmetry."""
    return increase_field(params)


def linearized_decrease_field(params: NormalizedParams | BCNParams) -> PlanarField:
    """Decrease law linearised about the origin (eq. 9):
    ``(x', y') = (y, -b C x - b k C y)``."""
    p = as_normalized(params)
    bc, bkc = p.b * p.capacity, p.b * p.k * p.capacity

    def field(t: float, state: np.ndarray) -> list[float]:
        x, y = state
        return [y, -bc * x - bkc * y]

    return field


def full_field(
    params: NormalizedParams | BCNParams, *, linearized: bool = False
) -> PlanarField:
    """The complete switched field, selecting the law by ``sign(x + k y)``.

    Useful for one-shot integration; the piecewise integrator in
    :mod:`repro.fluid.integrate` is preferred for accuracy because it
    stops exactly at switching events.
    """
    p = as_normalized(params)
    inc = increase_field(p)
    dec = linearized_decrease_field(p) if linearized else decrease_field(p)
    k = p.k

    def field(t: float, state: np.ndarray) -> list[float]:
        x, y = state
        if x + k * y < 0.0:
            return inc(t, state)
        return dec(t, state)

    return field


def pinned_full_field(params: NormalizedParams | BCNParams) -> Callable[[float, np.ndarray], list[float]]:
    """Rate dynamics while the queue is pinned at the buffer limit.

    With ``q = B`` and arrivals dropped, the switch observes
    ``dq/dt = 0``, so ``sigma = q0 - B = -x_B`` with ``x_B = B - q0 > 0``
    (negative feedback) and the decrease law gives
    ``dy/dt = -b (y + C) x_B``.
    """
    p = as_normalized(params)
    b, c = p.b, p.capacity
    x_b = p.buffer_size - p.q0

    def field(t: float, state: np.ndarray) -> list[float]:
        (y,) = state
        return [-b * (y + c) * x_b]

    return field


def pinned_empty_field(params: NormalizedParams | BCNParams) -> Callable[[float, np.ndarray], list[float]]:
    """Rate dynamics while the queue is pinned empty.

    With ``q = 0`` the switch observes ``sigma = q0`` (positive
    feedback), so the increase law gives ``dy/dt = a q0`` — exactly the
    warm-up law of Section IV.C (``T0 = (C - N mu)/(a q0)``).
    """
    p = as_normalized(params)
    rate = p.a * p.q0

    def field(t: float, state: np.ndarray) -> list[float]:
        return [rate]

    return field

"""The BCN-aware core switch (congestion point).

Implements the congestion-point side of the BCN mechanism (Section
II.B):

* a drop-tail FIFO serviced at line rate ``C``;
* **deterministic sampling**: every ``round(1/pm)``-th arriving frame is
  sampled; at a sample the switch computes the queue variation
  ``dq`` since the previous sample (by counting arrivals and departures,
  as the draft prescribes) and the congestion measure
  ``sigma = (q0 - q) - w * dq`` (eq. 1);
* **negative BCN** to the sampled frame's source when ``sigma < 0``;
* **positive BCN** only when ``sigma > 0``, the queue is below ``q0``
  *and* the sampled frame carries an RRT whose CPID matches this switch
  (i.e. the source is associated with this congestion point);
* **802.3x PAUSE** to all upstream neighbours when the instantaneous
  queue exceeds the severe-congestion threshold ``q_sc``.

BCN messages travel on dedicated backward links registered per source
address.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .engine import Simulator
from .frames import BCNMessage, EthernetFrame, PauseFrame
from .link import Link
from .queueing import DropTailQueue

__all__ = ["CoreSwitch", "SwitchStats", "BatchedSwitchKernel", "BatchedWindow"]


@dataclass
class SwitchStats:
    """Counters the switch maintains for the experiment harness."""

    samples: int = 0
    bcn_negative: int = 0
    bcn_positive: int = 0
    pauses_sent: int = 0
    forwarded_frames: int = 0
    forwarded_bits: float = 0.0


class CoreSwitch:
    """A single congestion point with a BCN control plane.

    Parameters
    ----------
    sim:
        Event engine.
    cpid:
        Congestion-point identifier (stands in for the interface MAC).
    capacity:
        Service rate ``C`` in bits/s.
    q0:
        Reference queue length in bits.
    buffer_bits:
        Physical buffer ``B`` in bits (drop-tail beyond it).
    w:
        Weight of the queue-derivative term in ``sigma``.
    pm:
        Sampling probability; realised deterministically as one sample
        every ``round(1/pm)`` arrivals.
    q_sc:
        Severe-congestion threshold for PAUSE; None disables PAUSE.
    pause_duration:
        Silence interval requested by each PAUSE frame.
    forward:
        Callback receiving each serviced frame (the downstream link).
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        cpid: str,
        capacity: float,
        q0: float,
        buffer_bits: float,
        w: float = 2.0,
        pm: float = 0.01,
        q_sc: float | None = None,
        pause_duration: float = 50e-6,
        forward: Callable[[EthernetFrame], None] | None = None,
        require_association: bool = True,
        positive_only_below_q0: bool = True,
        fb_bits: int | None = 6,
        sigma_unit: float | None = None,
        random_sampling: bool = False,
        sampling_seed: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < pm <= 1:
            raise ValueError("pm must lie in (0, 1]")
        self.sim = sim
        self.cpid = cpid
        self.capacity = capacity
        self.q0 = q0
        self.w = w
        self.pm = pm
        self.q_sc = q_sc
        self.pause_duration = pause_duration
        self.queue = DropTailQueue(buffer_bits)
        self.forward = forward or (lambda frame: None)
        self.stats = SwitchStats()
        #: Per the draft, positive BCN goes only to sources associated
        #: with this congestion point (RRT match).  The paper's fluid
        #: model idealises this to unconditional positive feedback; set
        #: False to match it (used by fluid-vs-packet validation).
        self.require_association = require_association
        #: The draft also gates positive BCN on the queue having drained
        #: below q0; the fluid model applies the increase law whenever
        #: sigma > 0.  Set False for the model's idealisation.
        self.positive_only_below_q0 = positive_only_below_q0
        #: FB quantization: the wire FB field is
        #: ``clamp(round(sigma / sigma_unit), -2**(fb_bits-1),
        #: 2**(fb_bits-1) - 1)``.  ``fb_bits=None`` carries raw sigma.
        #: ``sigma_unit`` defaults to ``q0 / 2**(fb_bits-2)`` so that a
        #: completely full reference queue maps to a quarter of full
        #: scale (the draft's equilibrium-centred scaling).
        self.fb_bits = fb_bits
        if fb_bits is not None and sigma_unit is None:
            sigma_unit = q0 / float(2 ** (fb_bits - 2))
        self.sigma_unit = sigma_unit

        #: Optional observability handle (set via :meth:`attach_obs`);
        #: ``None`` keeps the data path at a single attribute check.
        self.obs = None
        self.obs_engine = "packet.reference"

        self._sample_interval = max(1, round(1.0 / pm))
        self._arrivals_since_sample = 0
        #: The draft samples deterministically (every 1/pm-th frame),
        #: which aliases badly against synchronized homogeneous sources:
        #: the same flow can be picked every round.  Bernoulli sampling
        #: (seeded, reproducible) restores the fluid model's uniform
        #: per-flow feedback and is used by the validation experiments.
        self._rng = random.Random(sampling_seed) if random_sampling else None
        self._sampling_seed = sampling_seed
        self._q_at_last_sample = 0.0
        self._busy = False
        self._pause_armed = True
        self._service_paused_until = 0.0
        self._bcn_links: dict[int, Link] = {}
        self._pause_links: list[Link] = []
        #: history rows ``(t, sigma)`` of every computed congestion measure
        self.sigma_history: list[tuple[float, float]] = []

    # -- wiring ---------------------------------------------------------

    def attach_obs(self, obs, engine: str = "packet.reference") -> None:
        """Attach an :class:`repro.obs.Observability` handle.

        A disabled handle is stored as ``None`` so the per-frame fast
        path stays one ``is not None`` check.
        """
        self.obs = obs if (obs is not None and obs.enabled) else None
        self.obs_engine = engine

    def register_bcn_link(self, source_address: int, link: Link) -> None:
        """Register the backward control link towards a source."""
        self._bcn_links[source_address] = link

    def register_pause_link(self, link: Link) -> None:
        """Register an upstream neighbour to receive PAUSE frames."""
        self._pause_links.append(link)

    # -- data plane -----------------------------------------------------

    @property
    def queue_bits(self) -> float:
        """Instantaneous queue length ``q(t)`` in bits."""
        return self.queue.occupancy_bits

    def receive(self, frame: EthernetFrame) -> None:
        """Ingest a data frame: sample, enqueue (or drop), serve."""
        if self._rng is not None:
            sampled = self._rng.random() < self.pm
        else:
            self._arrivals_since_sample += 1
            sampled = self._arrivals_since_sample >= self._sample_interval
            if sampled:
                self._arrivals_since_sample = 0

        accepted = self.queue.offer(frame)
        if not accepted and self.obs is not None:
            self.obs.event("drop", self.sim.now, engine=self.obs_engine,
                           node=self.cpid, flow=frame.flow_id,
                           value=float(frame.size_bits))

        if sampled:
            self._process_sample(frame)

        if self.q_sc is not None and self.queue_bits > self.q_sc:
            self._maybe_pause()

        if accepted and not self._busy:
            self._start_service()

    def _process_sample(self, frame: EthernetFrame) -> None:
        """Compute sigma for a sampled frame and emit BCN if warranted."""
        self.stats.samples += 1
        q = self.queue_bits
        dq = q - self._q_at_last_sample
        self._q_at_last_sample = q
        sigma = (self.q0 - q) - self.w * dq
        self.sigma_history.append((self.sim.now, sigma))

        if sigma < 0:
            self._send_bcn(frame.src, sigma, q, dq)
            self.stats.bcn_negative += 1
            emitted = True
        elif sigma > 0 and (q < self.q0 or not self.positive_only_below_q0) and (
            not self.require_association or frame.rrt_cpid == self.cpid
        ):
            self._send_bcn(frame.src, sigma, q, dq)
            self.stats.bcn_positive += 1
            emitted = True
        else:
            emitted = False
        if emitted and self.obs is not None:
            self.obs.event("bcn", self.sim.now, engine=self.obs_engine,
                           node=self.cpid, flow=frame.src, value=sigma)

    def quantize_fb(self, sigma: float) -> float:
        """Map raw sigma (bits) to the wire FB value."""
        if self.fb_bits is None or self.sigma_unit is None:
            return sigma
        full_scale = 2 ** (self.fb_bits - 1)
        quantum = round(sigma / self.sigma_unit)
        return float(max(-full_scale, min(full_scale - 1, quantum)))

    def _send_bcn(self, src: int, sigma: float, q: float, dq: float) -> None:
        link = self._bcn_links.get(src)
        if link is None:
            return
        link.transmit(
            BCNMessage(
                da=src,
                sa=self.cpid,
                cpid=self.cpid,
                fb=self.quantize_fb(sigma),
                q_off=self.q0 - q,
                q_delta=dq,
                fb_raw=sigma,
                sent_at=self.sim.now,
            )
        )

    def _maybe_pause(self) -> None:
        """Send one PAUSE per excursion above ``q_sc`` (re-armed after)."""
        if not self._pause_armed:
            return
        self._pause_armed = False
        frame = PauseFrame(sa=self.cpid, duration=self.pause_duration,
                           sent_at=self.sim.now)
        for link in self._pause_links:
            link.transmit(frame)
        self.stats.pauses_sent += len(self._pause_links)
        if self.obs is not None:
            # One on/off pair per excursion; "off" is the re-arm time,
            # emitted eagerly so both packet engines pair identically.
            self.obs.event("pause_on", self.sim.now, engine=self.obs_engine,
                           node=self.cpid, value=self.pause_duration)
            self.obs.event("pause_off", self.sim.now + self.pause_duration,
                           engine=self.obs_engine, node=self.cpid)
        self.sim.schedule(self.pause_duration, self._rearm_pause)

    def _rearm_pause(self) -> None:
        self._pause_armed = True

    def receive_pause(self, frame: PauseFrame) -> None:
        """Honour an 802.3x PAUSE from downstream: stop serving.

        This is the hop-by-hop flow control whose head-of-line blocking
        the paper's Section I criticises: while paused, *every* frame
        behind this port waits, congestion rolls back upstream, and
        flows innocent of the original congestion stall with it.
        """
        self._service_paused_until = max(
            self._service_paused_until, self.sim.now + frame.duration
        )

    def suspend_service(self, until: float) -> None:
        """Freeze the server until ``until`` (link outage semantics).

        Store-and-forward: a frame already in service completes at its
        scheduled time; no new service starts while frozen.  Arrivals
        keep queueing (and drop-tail keeps applying), which is exactly
        how a dead egress link behaves behind a drop-tail FIFO.
        """
        self._service_paused_until = max(self._service_paused_until, until)

    def set_capacity(self, capacity: float) -> None:
        """Change the service rate ``C`` (time-varying capacity C(t)).

        Takes effect from the next service start; the in-flight frame
        finishes at the rate it started with (store-and-forward).
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity

    def _start_service(self) -> None:
        if self.sim.now < self._service_paused_until:
            self._busy = True
            self.sim.schedule_at(self._service_paused_until,
                                 self._start_service)
            return
        frame = self.queue.poll()
        if frame is None:
            self._busy = False
            return
        self._busy = True
        service_time = frame.size_bits / self.capacity

        def done() -> None:
            self.stats.forwarded_frames += 1
            self.stats.forwarded_bits += frame.size_bits
            self.forward(frame)
            self._start_service()

        self.sim.schedule(service_time, done)


@dataclass
class BatchedWindow:
    """What one frame-train window produced at the congestion point.

    ``msg_*`` arrays hold one row per BCN message the switch decided to
    emit (negative and gated positive feedback alike, in sample-time
    order); the orchestrator turns them into
    :class:`~repro.simulation.frames.BCNMessage` deliveries.
    """

    t_start: float
    t_commit: float
    committed: int  #: new arrivals committed (may be < len(times) on PAUSE)
    msg_t: np.ndarray
    msg_src: np.ndarray
    msg_fb: np.ndarray
    msg_sigma: np.ndarray
    msg_q_off: np.ndarray
    msg_dq: np.ndarray
    pause_at: float | None
    delivered_bits: float
    drops: int


class BatchedSwitchKernel:
    """Vectorized frame-train processing for one :class:`CoreSwitch`.

    The batched packet engine replaces the per-frame event cascade
    (emit, link, offer, serve, done) with window-sized numpy batches:
    between control boundaries every source's rate is constant, so the
    switch can ingest a whole merged frame train at once.  Service is
    the classic Lindley recursion — with uniform frame size ``L`` and
    service time ``s = L/C`` the completion times of FIFO arrivals
    ``A_k`` follow ``c_k = max(A_k, c_{k-1}) + s``, a prefix-maximum
    that vectorizes as ``c = s*k + max(c0, cummax(A_k - s*(k-1)))``.
    Queue occupancy at each arrival, the deterministic or Bernoulli
    ``pm`` sampling pattern, the congestion measure ``sigma`` and FB
    quantization all follow from those arrays with the exact semantics
    of :meth:`CoreSwitch.receive`/``_process_sample``.  Deterministic
    sampling advances the same modular counter as the reference
    engine; Bernoulli sampling draws one variate per arrival from a
    numpy ``Generator`` seeded with the switch's ``sampling_seed`` —
    reproducible run to run, but an independent stream from the
    reference engine's ``random.Random`` (the two engines' sampled
    trajectories agree statistically, not draw for draw).

    The fast path assumes no frame is dropped; when the no-drop check
    fails the window falls back to an exact per-frame scalar loop
    (drops are control boundaries in the ISSUE's sense).  A severe
    congestion (PAUSE) crossing truncates the window at the crossing
    arrival so the orchestrator can deliver the PAUSE and re-plan
    trains.

    Shared state lives on the wrapped switch (stats, drop-tail
    counters, sigma history, sampling state); in batched mode the
    switch's :class:`~repro.simulation.queueing.DropTailQueue` holds no
    frame objects — only its counters advance.
    """

    def __init__(
        self,
        switch: CoreSwitch,
        frame_bits: int,
        *,
        pause_fanout: int | None = None,
        pause_commit_horizon: float = 0.0,
    ) -> None:
        if frame_bits <= 0:
            raise ValueError("frame_bits must be positive")
        self.switch = switch
        self.frame_bits = frame_bits
        self._ssvc = frame_bits / switch.capacity
        #: On a PAUSE crossing the window commits through ``pause_at +
        #: pause_commit_horizon`` instead of cutting at the crossing
        #: arrival: frames emitted before the PAUSE frame reached their
        #: source (one propagation delay out, one back) are already in
        #: flight in the reference engine and must land, not be
        #: retroactively deferred.  The orchestrator passes ``2 *
        #: propagation_delay``.
        self.pause_commit_horizon = pause_commit_horizon
        #: How many upstream neighbours a PAUSE reaches (the reference
        #: engine counts one per registered pause link).
        self.pause_fanout = (
            pause_fanout if pause_fanout is not None
            else len(switch._pause_links)
        )
        #: Bernoulli sampling stream for the batched engine (None when
        #: the switch samples deterministically).
        self._rng = (
            np.random.default_rng(switch._sampling_seed)
            if switch._rng is not None else None
        )
        #: frames enqueued but whose service has not started
        self._backlog = 0
        #: completion time of the most recently started frame
        self._next_free = 0.0
        #: True while a frame is in service completing at ``_next_free``
        self._inflight = False
        #: PAUSE re-arm time (armed when the clock passes it)
        self._pause_rearm_at = -math.inf if switch._pause_armed else math.inf
        #: No service may *start* before this time (link outage); the
        #: in-flight frame still completes — store-and-forward, matching
        #: :meth:`CoreSwitch.suspend_service`.
        self._frozen_until = -math.inf
        # arrays of the last committed window, for queue_at()
        self._win_arrivals = np.empty(0)
        self._win_starts = np.empty(0)

    # -- timed-event hooks -------------------------------------------------

    def set_capacity(self, capacity: float) -> None:
        """Change the service rate; callers truncate windows at the event."""
        self.switch.set_capacity(capacity)
        self._ssvc = self.frame_bits / capacity

    def freeze_until(self, until: float) -> None:
        """Suspend service starts until ``until`` (link outage)."""
        self._frozen_until = max(self._frozen_until, until)
        self.switch._service_paused_until = max(
            self.switch._service_paused_until, until
        )

    # -- queue series ------------------------------------------------------

    def queue_at(self, times: np.ndarray) -> np.ndarray:
        """Queue occupancy (bits) at times inside the last window."""
        times = np.asarray(times, dtype=float)
        arrived = np.searchsorted(self._win_arrivals, times, side="right")
        started = np.searchsorted(self._win_starts, times, side="right")
        return self.frame_bits * (arrived - started).astype(float)

    # -- window processing -------------------------------------------------

    def process(
        self,
        t_start: float,
        t_end: float,
        times: np.ndarray,
        srcs: np.ndarray,
        assoc: np.ndarray,
    ) -> BatchedWindow:
        """Ingest the merged arrival train ``times`` (sorted) up to ``t_end``.

        Residual frames queued at ``t_start`` are handled as FIFO
        predecessors of the new arrivals.  Returns the committed prefix
        (everything, unless a PAUSE crossing cut the window short) plus
        the BCN messages it generated.
        """
        sw = self.switch
        L = self.frame_bits
        ssvc = self._ssvc
        m = int(times.size)
        n_res = self._backlog

        # FIFO stream = residual frames (already queued) then new arrivals.
        if n_res:
            arrivals = np.concatenate([np.full(n_res, t_start), times])
        else:
            arrivals = times
        total = n_res + m

        prev_inflight = self._inflight
        prev_next_free = self._next_free
        c0 = self._next_free if self._inflight else t_start
        # Outage: no service start before _frozen_until (the completion
        # hull floor delays every start past the freeze horizon).
        c0 = max(c0, self._frozen_until)

        if total:
            k = np.arange(1, total + 1, dtype=float)
            hull = np.maximum.accumulate(arrivals - ssvc * (k - 1.0))
            completions = ssvc * k + np.maximum(c0, hull)
            starts = completions - ssvc
        else:
            completions = starts = np.empty(0)

        pause_at: float | None = None
        drops = 0
        if m:
            # Occupancy just after each new arrival is offered (own frame
            # included, in-service frame excluded) — assuming no drops.
            # A start exactly at the arrival instant counts as "before"
            # only when it belongs to an earlier frame (the reference
            # engine processes the completion that triggered it first);
            # the arrival's own immediate start must not.  searchsorted
            # side="right" plus a clamp at the frame's own position gets
            # both, and is robust to the reconstructed start times
            # rounding one ulp below the arrival they equal.
            started_before = np.minimum(
                np.searchsorted(starts, times, side="right"),
                np.arange(n_res, total),
            )
            q_bits = L * (np.arange(n_res + 1, total + 1)
                          - started_before).astype(float)
            if bool(np.any(q_bits > sw.queue.capacity_bits)):
                # Drop-tail engages somewhere in this window: per-frame
                # fallback reproduces the reference semantics exactly.
                return self._process_scalar(t_start, t_end, times, srcs, assoc)

            if sw.q_sc is not None:
                crossing = (q_bits > sw.q_sc) & (times >= self._pause_rearm_at)
                hits = np.nonzero(crossing)[0]
                if hits.size:
                    cut = int(hits[0])
                    pause_at = float(times[cut])
                    self._pause_rearm_at = pause_at + sw.pause_duration
                    sw.stats.pauses_sent += self.pause_fanout
                    if sw.obs is not None:
                        sw.obs.event("pause_on", pause_at,
                                     engine=sw.obs_engine, node=sw.cpid,
                                     value=sw.pause_duration)
                        sw.obs.event("pause_off",
                                     pause_at + sw.pause_duration,
                                     engine=sw.obs_engine, node=sw.cpid)
                    # Commit through the in-flight horizon (frames the
                    # PAUSE cannot take back), defer the rest.
                    limit = min(pause_at + self.pause_commit_horizon, t_end)
                    m = max(
                        int(np.searchsorted(times, limit, side="right")),
                        cut + 1,
                    )
                    total = n_res + m
                    times = times[:m]
                    srcs = srcs[:m]
                    assoc = assoc[:m]
                    arrivals = arrivals[:total]
                    completions = completions[:total]
                    starts = starts[:total]
                    q_bits = q_bits[:m]
        else:
            q_bits = np.empty(0)

        if pause_at is None:
            t_commit = t_end
        else:
            t_commit = min(pause_at + self.pause_commit_horizon, t_end)

        # -- sampling / BCN ------------------------------------------------
        if m:
            if self._rng is not None:
                sampled = self._rng.random(m) < sw.pm
            else:
                idx = np.arange(1, m + 1)
                sampled = (sw._arrivals_since_sample + idx) \
                    % sw._sample_interval == 0
                sw._arrivals_since_sample = \
                    (sw._arrivals_since_sample + m) % sw._sample_interval
            sample_idx = np.nonzero(sampled)[0]
        else:
            sample_idx = np.empty(0, dtype=int)

        if sample_idx.size:
            qs = q_bits[sample_idx]
            q_prev = np.concatenate([[sw._q_at_last_sample], qs[:-1]])
            dq = qs - q_prev
            sigma = (sw.q0 - qs) - sw.w * dq
            sw._q_at_last_sample = float(qs[-1])
            t_s = times[sample_idx]
            sw.stats.samples += int(sample_idx.size)
            sw.sigma_history.extend(zip(t_s.tolist(), sigma.tolist()))

            negative = sigma < 0
            positive = (sigma > 0) \
                & ((qs < sw.q0) | (not sw.positive_only_below_q0))
            if sw.require_association:
                positive &= assoc[sample_idx]
            sw.stats.bcn_negative += int(np.count_nonzero(negative))
            sw.stats.bcn_positive += int(np.count_nonzero(positive))
            emit = negative | positive
            msg_t = t_s[emit]
            msg_src = srcs[sample_idx][emit]
            msg_sigma = sigma[emit]
            msg_q_off = sw.q0 - qs[emit]
            msg_dq = dq[emit]
            if sw.fb_bits is not None and sw.sigma_unit is not None:
                full_scale = 2 ** (sw.fb_bits - 1)
                msg_fb = np.clip(np.round(msg_sigma / sw.sigma_unit),
                                 -full_scale, full_scale - 1).astype(float)
            else:
                msg_fb = msg_sigma
        else:
            msg_t = msg_src = msg_fb = msg_sigma = np.empty(0)
            msg_q_off = msg_dq = np.empty(0)

        if sw.obs is not None and msg_t.size:
            for mt, msrc, msig in zip(msg_t.tolist(), msg_src.tolist(),
                                      msg_sigma.tolist()):
                sw.obs.event("bcn", mt, engine=sw.obs_engine, node=sw.cpid,
                             flow=int(msrc), value=msig)

        # -- service accounting & state roll-forward -----------------------
        delivered = int(np.searchsorted(completions, t_commit, side="right"))
        if prev_inflight and t_start < prev_next_free <= t_commit:
            delivered += 1
        n_started = int(np.searchsorted(starts, t_commit, side="right"))
        if n_started:
            self._next_free = float(completions[n_started - 1])
            self._inflight = self._next_free > t_commit
        elif prev_inflight and prev_next_free <= t_commit:
            self._inflight = False
        self._backlog = total - n_started

        delivered_bits = float(delivered * L)
        sw.stats.forwarded_frames += delivered
        sw.stats.forwarded_bits += delivered_bits
        q = sw.queue
        q.enqueued_frames += m
        q.enqueued_bits += float(m * L)
        q.dequeued_frames += n_started
        q.dequeued_bits += float(n_started * L)

        self._win_arrivals = arrivals
        self._win_starts = starts

        return BatchedWindow(
            t_start=t_start, t_commit=t_commit, committed=m,
            msg_t=msg_t, msg_src=msg_src, msg_fb=msg_fb,
            msg_sigma=msg_sigma, msg_q_off=msg_q_off, msg_dq=msg_dq,
            pause_at=pause_at, delivered_bits=delivered_bits, drops=drops,
        )

    # -- exact per-frame fallback -----------------------------------------

    def _process_scalar(
        self,
        t_start: float,
        t_end: float,
        times: np.ndarray,
        srcs: np.ndarray,
        assoc: np.ndarray,
    ) -> BatchedWindow:
        """Reference-faithful per-frame loop for windows with drops."""
        sw = self.switch
        L = self.frame_bits
        ssvc = self._ssvc
        B = sw.queue.capacity_bits

        backlog = self._backlog
        prev_inflight = self._inflight
        prev_next_free = self._next_free
        next_free = self._next_free if self._inflight else -math.inf
        # Outage floor: the earliest time any *new* service may start.
        # ``next_free`` doubles as the next start time of a backlogged
        # frame, so flooring it here freezes starts without touching the
        # in-flight completion already rolled into ``_next_free``.
        next_free = max(next_free, t_start, self._frozen_until)
        any_started = False

        acc_arrivals: list[float] = [t_start] * backlog
        starts: list[float] = []
        msg_rows: list[tuple[float, int, float, float, float, float]] = []
        drops = 0
        accepted_new = 0
        pause_at: float | None = None
        pause_limit = math.inf
        t_commit = t_end
        committed = 0

        interval = sw._sample_interval
        rng = self._rng

        for j in range(times.size):
            a = float(times[j])
            if a > pause_limit:
                # Beyond the in-flight horizon of the PAUSE: deferred.
                break
            # services that started strictly before this arrival
            while backlog and next_free < a:
                starts.append(next_free)
                next_free += ssvc
                backlog -= 1
                any_started = True
            # sampling decision consumed before the offer, as in receive()
            if rng is not None:
                sampled = float(rng.random()) < sw.pm
            else:
                sw._arrivals_since_sample += 1
                sampled = sw._arrivals_since_sample >= interval
                if sampled:
                    sw._arrivals_since_sample = 0
            occ = backlog * L
            accepted = occ + L <= B
            if accepted:
                accepted_new += 1
                acc_arrivals.append(a)
                sw.queue.enqueued_frames += 1
                sw.queue.enqueued_bits += L
                if backlog == 0 and next_free <= a:
                    starts.append(a)
                    next_free = a + ssvc
                    any_started = True
                else:
                    backlog += 1
                q_now = occ + L
            else:
                drops += 1
                sw.queue.dropped_frames += 1
                sw.queue.dropped_bits += L
                q_now = occ
                if sw.obs is not None:
                    sw.obs.event("drop", a, engine=sw.obs_engine,
                                 node=sw.cpid, flow=int(srcs[j]),
                                 value=float(L))
            if sampled:
                dq = q_now - sw._q_at_last_sample
                sw._q_at_last_sample = q_now
                sigma = (sw.q0 - q_now) - sw.w * dq
                sw.stats.samples += 1
                sw.sigma_history.append((a, sigma))
                n_rows_before = len(msg_rows)
                if sigma < 0:
                    sw.stats.bcn_negative += 1
                    msg_rows.append((a, int(srcs[j]), sigma,
                                     sw.q0 - q_now, dq, sw.quantize_fb(sigma)))
                elif sigma > 0 and (q_now < sw.q0
                                    or not sw.positive_only_below_q0) and (
                        not sw.require_association or bool(assoc[j])):
                    sw.stats.bcn_positive += 1
                    msg_rows.append((a, int(srcs[j]), sigma,
                                     sw.q0 - q_now, dq, sw.quantize_fb(sigma)))
                if sw.obs is not None and len(msg_rows) > n_rows_before:
                    sw.obs.event("bcn", a, engine=sw.obs_engine,
                                 node=sw.cpid, flow=int(srcs[j]), value=sigma)
            committed += 1
            if (sw.q_sc is not None and q_now > sw.q_sc
                    and a >= self._pause_rearm_at):
                pause_at = a
                self._pause_rearm_at = a + sw.pause_duration
                sw.stats.pauses_sent += self.pause_fanout
                if sw.obs is not None:
                    sw.obs.event("pause_on", a, engine=sw.obs_engine,
                                 node=sw.cpid, value=sw.pause_duration)
                    sw.obs.event("pause_off", a + sw.pause_duration,
                                 engine=sw.obs_engine, node=sw.cpid)
                pause_limit = min(a + self.pause_commit_horizon, t_end)
                t_commit = pause_limit
        # drain services through the commit horizon
        while backlog and next_free <= t_commit:
            starts.append(next_free)
            next_free += ssvc
            backlog -= 1
            any_started = True

        starts_arr = np.asarray(starts, dtype=float)
        delivered = int(np.searchsorted(starts_arr + ssvc, t_commit,
                                        side="right"))
        if prev_inflight and t_start < prev_next_free <= t_commit:
            delivered += 1
        if any_started:
            self._next_free = next_free
            self._inflight = next_free > t_commit
        elif prev_inflight and prev_next_free <= t_commit:
            self._inflight = False
        self._backlog = backlog

        delivered_bits = float(delivered * L)
        sw.stats.forwarded_frames += delivered
        sw.stats.forwarded_bits += delivered_bits
        sw.queue.dequeued_frames += len(starts)
        sw.queue.dequeued_bits += float(len(starts) * L)

        self._win_arrivals = np.asarray(acc_arrivals, dtype=float)
        self._win_starts = starts_arr

        if msg_rows:
            cols = list(zip(*msg_rows))
            msg_t = np.asarray(cols[0], dtype=float)
            msg_src = np.asarray(cols[1])
            msg_sigma = np.asarray(cols[2], dtype=float)
            msg_q_off = np.asarray(cols[3], dtype=float)
            msg_dq = np.asarray(cols[4], dtype=float)
            msg_fb = np.asarray(cols[5], dtype=float)
        else:
            msg_t = msg_src = msg_fb = msg_sigma = np.empty(0)
            msg_q_off = msg_dq = np.empty(0)

        return BatchedWindow(
            t_start=t_start, t_commit=t_commit, committed=committed,
            msg_t=msg_t, msg_src=msg_src, msg_fb=msg_fb,
            msg_sigma=msg_sigma, msg_q_off=msg_q_off, msg_dq=msg_dq,
            pause_at=pause_at, delivered_bits=delivered_bits, drops=drops,
        )

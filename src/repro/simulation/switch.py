"""The BCN-aware core switch (congestion point).

Implements the congestion-point side of the BCN mechanism (Section
II.B):

* a drop-tail FIFO serviced at line rate ``C``;
* **deterministic sampling**: every ``round(1/pm)``-th arriving frame is
  sampled; at a sample the switch computes the queue variation
  ``dq`` since the previous sample (by counting arrivals and departures,
  as the draft prescribes) and the congestion measure
  ``sigma = (q0 - q) - w * dq`` (eq. 1);
* **negative BCN** to the sampled frame's source when ``sigma < 0``;
* **positive BCN** only when ``sigma > 0``, the queue is below ``q0``
  *and* the sampled frame carries an RRT whose CPID matches this switch
  (i.e. the source is associated with this congestion point);
* **802.3x PAUSE** to all upstream neighbours when the instantaneous
  queue exceeds the severe-congestion threshold ``q_sc``.

BCN messages travel on dedicated backward links registered per source
address.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from .engine import Simulator
from .frames import BCNMessage, EthernetFrame, PauseFrame
from .link import Link
from .queueing import DropTailQueue

__all__ = ["CoreSwitch", "SwitchStats"]


@dataclass
class SwitchStats:
    """Counters the switch maintains for the experiment harness."""

    samples: int = 0
    bcn_negative: int = 0
    bcn_positive: int = 0
    pauses_sent: int = 0
    forwarded_frames: int = 0
    forwarded_bits: float = 0.0


class CoreSwitch:
    """A single congestion point with a BCN control plane.

    Parameters
    ----------
    sim:
        Event engine.
    cpid:
        Congestion-point identifier (stands in for the interface MAC).
    capacity:
        Service rate ``C`` in bits/s.
    q0:
        Reference queue length in bits.
    buffer_bits:
        Physical buffer ``B`` in bits (drop-tail beyond it).
    w:
        Weight of the queue-derivative term in ``sigma``.
    pm:
        Sampling probability; realised deterministically as one sample
        every ``round(1/pm)`` arrivals.
    q_sc:
        Severe-congestion threshold for PAUSE; None disables PAUSE.
    pause_duration:
        Silence interval requested by each PAUSE frame.
    forward:
        Callback receiving each serviced frame (the downstream link).
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        cpid: str,
        capacity: float,
        q0: float,
        buffer_bits: float,
        w: float = 2.0,
        pm: float = 0.01,
        q_sc: float | None = None,
        pause_duration: float = 50e-6,
        forward: Callable[[EthernetFrame], None] | None = None,
        require_association: bool = True,
        positive_only_below_q0: bool = True,
        fb_bits: int | None = 6,
        sigma_unit: float | None = None,
        random_sampling: bool = False,
        sampling_seed: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < pm <= 1:
            raise ValueError("pm must lie in (0, 1]")
        self.sim = sim
        self.cpid = cpid
        self.capacity = capacity
        self.q0 = q0
        self.w = w
        self.pm = pm
        self.q_sc = q_sc
        self.pause_duration = pause_duration
        self.queue = DropTailQueue(buffer_bits)
        self.forward = forward or (lambda frame: None)
        self.stats = SwitchStats()
        #: Per the draft, positive BCN goes only to sources associated
        #: with this congestion point (RRT match).  The paper's fluid
        #: model idealises this to unconditional positive feedback; set
        #: False to match it (used by fluid-vs-packet validation).
        self.require_association = require_association
        #: The draft also gates positive BCN on the queue having drained
        #: below q0; the fluid model applies the increase law whenever
        #: sigma > 0.  Set False for the model's idealisation.
        self.positive_only_below_q0 = positive_only_below_q0
        #: FB quantization: the wire FB field is
        #: ``clamp(round(sigma / sigma_unit), -2**(fb_bits-1),
        #: 2**(fb_bits-1) - 1)``.  ``fb_bits=None`` carries raw sigma.
        #: ``sigma_unit`` defaults to ``q0 / 2**(fb_bits-2)`` so that a
        #: completely full reference queue maps to a quarter of full
        #: scale (the draft's equilibrium-centred scaling).
        self.fb_bits = fb_bits
        if fb_bits is not None and sigma_unit is None:
            sigma_unit = q0 / float(2 ** (fb_bits - 2))
        self.sigma_unit = sigma_unit

        self._sample_interval = max(1, round(1.0 / pm))
        self._arrivals_since_sample = 0
        #: The draft samples deterministically (every 1/pm-th frame),
        #: which aliases badly against synchronized homogeneous sources:
        #: the same flow can be picked every round.  Bernoulli sampling
        #: (seeded, reproducible) restores the fluid model's uniform
        #: per-flow feedback and is used by the validation experiments.
        self._rng = random.Random(sampling_seed) if random_sampling else None
        self._q_at_last_sample = 0.0
        self._busy = False
        self._pause_armed = True
        self._service_paused_until = 0.0
        self._bcn_links: dict[int, Link] = {}
        self._pause_links: list[Link] = []
        #: history rows ``(t, sigma)`` of every computed congestion measure
        self.sigma_history: list[tuple[float, float]] = []

    # -- wiring ---------------------------------------------------------

    def register_bcn_link(self, source_address: int, link: Link) -> None:
        """Register the backward control link towards a source."""
        self._bcn_links[source_address] = link

    def register_pause_link(self, link: Link) -> None:
        """Register an upstream neighbour to receive PAUSE frames."""
        self._pause_links.append(link)

    # -- data plane -----------------------------------------------------

    @property
    def queue_bits(self) -> float:
        """Instantaneous queue length ``q(t)`` in bits."""
        return self.queue.occupancy_bits

    def receive(self, frame: EthernetFrame) -> None:
        """Ingest a data frame: sample, enqueue (or drop), serve."""
        if self._rng is not None:
            sampled = self._rng.random() < self.pm
        else:
            self._arrivals_since_sample += 1
            sampled = self._arrivals_since_sample >= self._sample_interval
            if sampled:
                self._arrivals_since_sample = 0

        accepted = self.queue.offer(frame)

        if sampled:
            self._process_sample(frame)

        if self.q_sc is not None and self.queue_bits > self.q_sc:
            self._maybe_pause()

        if accepted and not self._busy:
            self._start_service()

    def _process_sample(self, frame: EthernetFrame) -> None:
        """Compute sigma for a sampled frame and emit BCN if warranted."""
        self.stats.samples += 1
        q = self.queue_bits
        dq = q - self._q_at_last_sample
        self._q_at_last_sample = q
        sigma = (self.q0 - q) - self.w * dq
        self.sigma_history.append((self.sim.now, sigma))

        if sigma < 0:
            self._send_bcn(frame.src, sigma, q, dq)
            self.stats.bcn_negative += 1
        elif sigma > 0 and (q < self.q0 or not self.positive_only_below_q0) and (
            not self.require_association or frame.rrt_cpid == self.cpid
        ):
            self._send_bcn(frame.src, sigma, q, dq)
            self.stats.bcn_positive += 1

    def quantize_fb(self, sigma: float) -> float:
        """Map raw sigma (bits) to the wire FB value."""
        if self.fb_bits is None or self.sigma_unit is None:
            return sigma
        full_scale = 2 ** (self.fb_bits - 1)
        quantum = round(sigma / self.sigma_unit)
        return float(max(-full_scale, min(full_scale - 1, quantum)))

    def _send_bcn(self, src: int, sigma: float, q: float, dq: float) -> None:
        link = self._bcn_links.get(src)
        if link is None:
            return
        link.transmit(
            BCNMessage(
                da=src,
                sa=self.cpid,
                cpid=self.cpid,
                fb=self.quantize_fb(sigma),
                q_off=self.q0 - q,
                q_delta=dq,
                fb_raw=sigma,
                sent_at=self.sim.now,
            )
        )

    def _maybe_pause(self) -> None:
        """Send one PAUSE per excursion above ``q_sc`` (re-armed after)."""
        if not self._pause_armed:
            return
        self._pause_armed = False
        frame = PauseFrame(sa=self.cpid, duration=self.pause_duration,
                           sent_at=self.sim.now)
        for link in self._pause_links:
            link.transmit(frame)
        self.stats.pauses_sent += len(self._pause_links)
        self.sim.schedule(self.pause_duration, self._rearm_pause)

    def _rearm_pause(self) -> None:
        self._pause_armed = True

    def receive_pause(self, frame: PauseFrame) -> None:
        """Honour an 802.3x PAUSE from downstream: stop serving.

        This is the hop-by-hop flow control whose head-of-line blocking
        the paper's Section I criticises: while paused, *every* frame
        behind this port waits, congestion rolls back upstream, and
        flows innocent of the original congestion stall with it.
        """
        self._service_paused_until = max(
            self._service_paused_until, self.sim.now + frame.duration
        )

    def _start_service(self) -> None:
        if self.sim.now < self._service_paused_until:
            self._busy = True
            self.sim.schedule_at(self._service_paused_until,
                                 self._start_service)
            return
        frame = self.queue.poll()
        if frame is None:
            self._busy = False
            return
        self._busy = True
        service_time = frame.size_bits / self.capacity

        def done() -> None:
            self.stats.forwarded_frames += 1
            self.stats.forwarded_bits += frame.size_bits
            self.forward(frame)
            self._start_service()

        self.sim.schedule(service_time, done)

"""Traffic sources with BCN rate regulators (congestion reaction points).

Each source emits fixed-size frames paced at its current rate ``r`` and
hosts a **rate regulator** — the congestion reaction point of Section
II.B, usually located in the edge NIC.  On receiving a BCN message the
regulator applies the modified AIMD of eq. (2)::

    r <- r + Gi * Ru * sigma        if sigma > 0   (additive increase)
    r <- r * (1 + Gd * sigma)       if sigma < 0   (multiplicative decrease)

A source receiving a *negative* BCN associates itself with the
congestion point named in the CPID field; its subsequent frames carry a
Rate Regulator Tag with that CPID so the switch can send it positive
feedback once the queue drains below ``q0``.  The association is
released when the regulator's rate recovers to the line rate.

Draft vs fluid semantics
------------------------
The draft states eq. (2) per *message* with a quantized FB field, while
the fluid model (eq. 7) reads the same laws per *unit time* with sigma
in bits.  :class:`RateRegulator` supports both (see its docstring); the
fluid modes integrate the per-flow law over the time elapsed since the
flow's previous BCN message, which converges to eq. (7) in the
fluid limit and is what the fluid-vs-packet validation experiments use.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .engine import Simulator
from .frames import BCNMessage, EthernetFrame, PauseFrame

__all__ = ["RateRegulator", "TrafficSource", "expected_message_interval"]


class RateRegulator:
    """The BCN congestion reaction point: AIMD state for one source.

    Three update semantics are supported (``mode``):

    ``"message"`` (draft semantics, the default)
        Eq. (2) applied literally per BCN message, with ``fb`` being the
        FB field as carried on the wire (quantized by the switch when
        quantization is enabled): ``r += Gi*Ru*fb`` on positive feedback
        and ``r *= (1 + Gd*fb)`` on negative.  The draft's recommended
        gains are calibrated for this mode — e.g. ``Gd = 1/128`` with a
        6-bit FB (max magnitude 64) caps a single decrease at 50%.
    ``"fluid-euler"``
        The fluid laws of eq. (7) integrated with an explicit Euler step
        over the time since this regulator's previous update:
        ``r += Gi*Ru*sigma*dt`` / ``r *= (1 + Gd*sigma*dt)``.  Matches
        the fluid model only while ``|Gd*sigma*dt| << 1``.
    ``"fluid-exact"``
        Same, but the multiplicative decrease integrates exactly:
        ``r *= exp(Gd*sigma*dt)`` — unconditionally positive and stable
        for any message spacing; preferred for fluid-vs-packet
        validation.  Both fluid modes read the *raw* sigma in bits
        (``fb_raw``), not the quantized FB field.
    """

    def __init__(
        self,
        *,
        gi: float,
        gd: float,
        ru: float,
        initial_rate: float,
        min_rate: float,
        line_rate: float,
        mode: str = "message",
        max_dt: float | None = None,
    ) -> None:
        if initial_rate <= 0:
            raise ValueError("initial_rate must be positive")
        if not 0 < min_rate <= line_rate:
            raise ValueError("need 0 < min_rate <= line_rate")
        if mode not in ("message", "fluid-euler", "fluid-exact"):
            raise ValueError(f"unknown regulator mode {mode!r}")
        self.gi = gi
        self.gd = gd
        self.ru = ru
        self.mode = mode
        self.min_rate = min_rate
        self.line_rate = line_rate
        self.rate = min(initial_rate, line_rate)
        self.max_dt = max_dt
        self.associated_cpid: str | None = None
        self.updates_applied = 0
        self._last_update: float | None = None

    def apply(self, message: BCNMessage, now: float = 0.0) -> None:
        """Apply eq. (2) / eq. (7) to this regulator's rate."""
        if self.mode == "message":
            fb = message.fb
            if fb > 0:
                self.rate += self.gi * self.ru * fb
            elif fb < 0:
                self.rate *= max(1.0 + self.gd * fb, 0.0)
        else:
            sigma = message.fb_raw
            dt = 0.0 if self._last_update is None else now - self._last_update
            if self.max_dt is not None:
                dt = min(dt, self.max_dt)
            self._last_update = now
            if sigma > 0:
                self.rate += self.gi * self.ru * sigma * dt
            elif sigma < 0:
                if self.mode == "fluid-exact":
                    self.rate *= math.exp(self.gd * sigma * dt)
                else:
                    self.rate *= max(1.0 + self.gd * sigma * dt, 0.0)
        self.rate = min(max(self.rate, self.min_rate), self.line_rate)
        self.updates_applied += 1
        fb_sign = message.fb if self.mode == "message" else message.fb_raw
        if fb_sign < 0:
            self.associated_cpid = message.cpid
        elif self.rate >= self.line_rate:
            self.associated_cpid = None


class TrafficSource:
    """A paced constant-size-frame source with a BCN rate regulator.

    Parameters
    ----------
    sim:
        Event engine.
    address:
        Source address (matched against BCN ``da``).
    frame_bits:
        Data frame size (default 1500 bytes).
    regulator:
        The AIMD state; the source paces at ``regulator.rate``.
    send:
        Callback carrying each emitted frame to the first hop.
    start_time:
        Simulation time at which the source begins pacing (dynamic
        workloads schedule arrivals here; 0.0 = active from the start).
    on_rate_change:
        Optional observer invoked as ``(time, rate)`` after every BCN
        update, used by the recorder.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        address: int,
        regulator: RateRegulator,
        send: Callable[[EthernetFrame], None],
        frame_bits: int = 1500 * 8,
        dst: str = "sink",
        total_bits: float | None = None,
        start_time: float = 0.0,
        on_rate_change: Callable[[float, float], None] | None = None,
    ) -> None:
        if start_time < 0:
            raise ValueError("start_time cannot be negative")
        self.sim = sim
        self.address = address
        self.regulator = regulator
        self.send = send
        self.frame_bits = frame_bits
        self.dst = dst
        self.total_bits = total_bits
        self.start_time = start_time
        self.on_rate_change = on_rate_change
        self.frames_sent = 0
        self.bits_sent = 0.0
        self.paused_until = 0.0
        self._started = False
        self.muted = False  # on/off workloads toggle this
        #: Emission time of a finite flow's last frame (None until then).
        self.finish_time: float | None = None
        #: Pending-emission time for the batched frame-train path
        #: (None until the first train is planned).
        self._train_next: float | None = None

    # -- data plane -------------------------------------------------------

    def start(self) -> None:
        """Begin pacing frames at the regulator's current rate."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self._gap(), self._emit)

    def _gap(self) -> float:
        return self.frame_bits / self.regulator.rate

    @property
    def finished(self) -> bool:
        """True once a finite flow has sent all its bits."""
        return self.total_bits is not None and self.bits_sent >= self.total_bits

    def _emit(self) -> None:
        now = self.sim.now
        if self.finished:
            return
        if self.muted:
            # OFF period: poll again after one frame gap at current rate.
            self.sim.schedule(self._gap(), self._emit)
            return
        if now < self.paused_until:
            # PAUSEd: retry right after the silence interval ends.
            self.sim.schedule_at(self.paused_until, self._emit)
            return
        frame = EthernetFrame(
            src=self.address,
            dst=self.dst,
            size_bits=self.frame_bits,
            flow_id=self.address,
            rrt_cpid=self.regulator.associated_cpid,
            created_at=now,
        )
        self.send(frame)
        self.frames_sent += 1
        self.bits_sent += self.frame_bits
        if self.finished:
            # Send-side flow completion time (emission of the last
            # frame) — the FCT convention shared with the batched engine.
            self.finish_time = now
            return
        self.sim.schedule(self._gap(), self._emit)

    # -- frame-train batching (used by the batched packet engine) ---------

    def plan_train(self, until: float) -> np.ndarray:
        """Emission times of the pending frame train up to ``until``.

        Between control events (BCN messages, PAUSE expiry, rate
        updates) the source's rate is constant, so its emissions form an
        arithmetic sequence: the pending emission, then one frame gap
        apart.  This is the pure *planning* half of train batching —
        counters and the pending-emission pointer move only when the
        orchestrator calls :meth:`commit_train` with the prefix that was
        actually processed (a train may be cut short at a control
        boundary such as a PAUSE).

        Mirrors the event-driven pacing loop: the first emission is the
        scheduled one (one gap after the previous frame, or after
        ``start``), deferred to ``paused_until`` when PAUSEd; finite
        flows stop after ``total_bits``; a muted source emits nothing.
        """
        if self.muted or self.finished:
            return np.empty(0)
        gap = self._gap()
        first = self._train_next if self._train_next is not None else (
            self.sim.now + gap
        )
        first = max(first, self.paused_until)
        if first > until:
            return np.empty(0)
        count = int(math.floor((until - first) / gap)) + 1
        if self.total_bits is not None:
            remaining = int(
                math.ceil((self.total_bits - self.bits_sent) / self.frame_bits)
            )
            count = min(count, max(remaining, 0))
        return first + gap * np.arange(count)

    def commit_train(self, times: np.ndarray, committed: int) -> None:
        """Account for the first ``committed`` emissions of a planned train.

        Must be called before any control update alters the rate the
        train was planned at: the next pending emission sits one current
        frame gap after the last committed one.
        """
        if committed:
            self.frames_sent += committed
            self.bits_sent += committed * self.frame_bits
            if self.finished and self.finish_time is None:
                self.finish_time = float(times[committed - 1])
            self._train_next = float(times[committed - 1]) + self._gap()
        elif times.size:
            # Nothing committed: the planned first emission stays pending.
            self._train_next = float(times[0])

    # -- control plane ------------------------------------------------------

    def receive_control(self, message: BCNMessage | PauseFrame) -> None:
        """Handle a backward control frame (BCN or PAUSE)."""
        if isinstance(message, PauseFrame):
            self.paused_until = max(
                self.paused_until, self.sim.now + message.duration
            )
            return
        self.regulator.apply(message, self.sim.now)
        if self.on_rate_change is not None:
            self.on_rate_change(self.sim.now, self.regulator.rate)

    @property
    def rate(self) -> float:
        """Current regulated sending rate in bits/s."""
        return self.regulator.rate


def expected_message_interval(
    n_flows: int, frame_bits: int, pm: float, capacity: float
) -> float:
    """Expected BCN inter-message time for a flow at the fair rate.

    A flow sending at ``C/N`` is sampled every ``L / (pm * C/N)
    = N L / (pm C)`` seconds.  Useful as a ``max_dt`` cap for the fluid
    regulator modes and for sizing recorder intervals.
    """
    if n_flows < 1 or frame_bits <= 0 or not 0 < pm <= 1 or capacity <= 0:
        raise ValueError("invalid inputs")
    return n_flows * frame_bits / (pm * capacity)

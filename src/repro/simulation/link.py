"""Point-to-point links with propagation delay.

A :class:`Link` delivers any object to a receiver callback after a fixed
propagation delay.  Serialisation time is modelled where bandwidth is
owned (the source's pacing and the switch's service loop), so the link
itself is a pure delay element — matching the paper's assumption that
propagation delay is negligible next to queueing delay (both are still
modelled; set ``delay=0`` to recover the paper's idealisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .engine import Simulator

__all__ = ["Link"]


@dataclass
class Link:
    """A unidirectional delay element.

    Parameters
    ----------
    sim:
        The event engine.
    delay:
        One-way propagation delay in seconds.
    deliver:
        Callback invoked with the payload on arrival.
    """

    sim: Simulator
    delay: float
    deliver: Callable[[Any], None]
    delivered: int = 0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("propagation delay cannot be negative")

    def transmit(self, payload: Any) -> None:
        """Send ``payload``; it arrives ``delay`` seconds from now."""

        def arrive() -> None:
            self.delivered += 1
            self.deliver(payload)

        if self.delay == 0.0:
            self.sim.schedule(0.0, arrive)
        else:
            self.sim.schedule(self.delay, arrive)

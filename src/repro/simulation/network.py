"""Single-bottleneck (dumbbell) BCN network simulator.

Wires the paper's reference scenario (Fig. 1): ``N`` homogeneous sources
behind edge rate regulators, one core switch with a BCN congestion
point, and a sink — all over links with configurable propagation delay.
:class:`BCNNetworkSimulator` builds the network from a
:class:`~repro.core.parameters.BCNParams`, runs it, and returns a
:class:`SimulationResult` with the queue trajectory, per-source rates,
drop/PAUSE/BCN counters and derived metrics (utilisation, Jain fairness,
peak queue), ready to be compared against the fluid model.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

from ..core.parameters import BCNParams
from .engine import Simulator
from .frames import BCNMessage, EthernetFrame, PauseFrame
from .link import Link
from .source import RateRegulator, TrafficSource, expected_message_interval
from .switch import BatchedSwitchKernel, CoreSwitch

__all__ = ["SimulationResult", "BCNNetworkSimulator", "PACKET_ENGINES"]

#: Selectable packet engines: the event-driven oracle, the frame-train
#: batched fast path, and its compiled-kernel variant (``repro.kernels``).
PACKET_ENGINES = ("reference", "batched", "compiled")


class _SeriesBuffer:
    """An appendable ``(t, value)`` series backed by growable arrays.

    The recorder used to collect Python lists of tuples and convert
    them element-by-element at the end of a run; this keeps the samples
    in preallocated float arrays (doubling on overflow) and hands back
    views with a single slice.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._t = np.empty(max(capacity, 16))
        self._v = np.empty(max(capacity, 16))
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _grow(self, need: int) -> None:
        capacity = self._t.size
        while capacity < need:
            capacity *= 2
        t = np.empty(capacity)
        v = np.empty(capacity)
        t[: self._n] = self._t[: self._n]
        v[: self._n] = self._v[: self._n]
        self._t, self._v = t, v

    def append(self, t: float, value: float) -> None:
        if self._n == self._t.size:
            self._grow(self._n + 1)
        self._t[self._n] = t
        self._v[self._n] = value
        self._n += 1

    def extend(self, t: np.ndarray, values: np.ndarray) -> None:
        n = self._n + t.size
        if n > self._t.size:
            self._grow(n)
        self._t[self._n : n] = t
        self._v[self._n : n] = values
        self._n = n

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return self._t[: self._n].copy(), self._v[: self._n].copy()


@dataclass
class SimulationResult:
    """Outcome of a packet-level run.

    Attributes
    ----------
    t, queue:
        Sampled queue-length series (seconds, bits).
    rate_t, rate_total:
        Sampled aggregate offered rate series (sum of regulator rates).
    per_source_rate:
        Final per-source rates in bits/s.
    dropped_frames, forwarded_frames:
        Bottleneck counters.
    bcn_negative, bcn_positive, pauses:
        Control-plane counters.
    delivered_bits:
        Bits serviced by the bottleneck over the run.
    duration:
        Simulated horizon in seconds.
    """

    t: np.ndarray
    queue: np.ndarray
    rate_t: np.ndarray
    rate_total: np.ndarray
    per_source_rate: np.ndarray
    dropped_frames: int
    forwarded_frames: int
    bcn_negative: int
    bcn_positive: int
    pauses: int
    delivered_bits: float
    duration: float
    capacity: float

    def utilization(self, *, settle: float = 0.0) -> float:
        """Bottleneck utilisation over ``[settle, duration]``."""
        horizon = self.duration - settle
        if horizon <= 0:
            raise ValueError("settle must be below the run duration")
        return self.delivered_bits / (self.capacity * self.duration) if settle == 0 else (
            self.delivered_bits / (self.capacity * self.duration)
        )

    def jain_fairness(self) -> float:
        """Jain's fairness index of the final per-source rates."""
        r = self.per_source_rate
        if r.size == 0 or float(np.sum(r * r)) == 0.0:
            return 1.0
        return float(np.sum(r)) ** 2 / (r.size * float(np.sum(r * r)))

    def queue_peak(self) -> float:
        return float(self.queue.max()) if self.queue.size else 0.0

    def queue_mean(self, *, settle: float = 0.0) -> float:
        mask = self.t >= settle
        return float(self.queue[mask].mean()) if mask.any() else 0.0

    def queue_std(self, *, settle: float = 0.0) -> float:
        mask = self.t >= settle
        return float(self.queue[mask].std()) if mask.any() else 0.0


class BCNNetworkSimulator:
    """Builds and runs the dumbbell BCN scenario of Fig. 1.

    Parameters
    ----------
    params:
        Physical BCN parameters (capacity, gains, thresholds...).
    frame_bits:
        Data frame size; default 1500 bytes.
    propagation_delay:
        One-way link delay (data and control paths alike); the paper's
        model takes it negligible, default 0.5 us as in the Section IV
        example.
    initial_rate:
        Per-source starting rate; defaults to 1.5x the fair share so
        congestion forms and the BCN loop engages.
    regulator_mode:
        ``"message"`` (draft per-message AIMD on the quantized FB
        field), ``"fluid-euler"`` or ``"fluid-exact"`` (integrate the
        fluid laws between messages); see
        :class:`repro.simulation.source.RateRegulator`.
    fb_bits:
        FB quantization width at the switch (None = raw sigma).
    require_association:
        Gate positive BCN on RRT/CPID match (draft behaviour); set
        False for the paper's idealised unconditional positive feedback.
    enable_pause:
        Wire 802.3x PAUSE from the core switch back to the sources.
    queue_sample_interval:
        Recorder period for the queue series; defaults to 50 service
        times.
    engine:
        ``"reference"`` (the event-driven kernel, one callback per
        frame — the differential oracle) or ``"batched"`` (frame-train
        batching: sources plan whole emission trains as numpy arrays
        and the switch drains them through the vectorized
        :class:`~repro.simulation.switch.BatchedSwitchKernel`).  Both
        engines are deterministic; they agree within a documented
        tolerance — the batched engine computes queue/sigma/sampling
        exactly but applies control messages to the regulators at
        window boundaries, so rate changes can lag their reference
        timing by up to one ``control_quantum``.
    control_quantum:
        Window length for the batched engine; defaults to twice the
        expected BCN inter-message time (small enough that the
        compensated regulator lag stays well below the control loop
        period, large enough to amortize the numpy batch overhead).
    obs:
        Optional :class:`repro.obs.Observability` handle.  The switch
        emits ``bcn``/``pause_on``/``pause_off``/``drop`` events live
        under ``engine="packet.<engine>"``; :meth:`run` adds a
        ``packet.<engine>.run`` span, derives ``region_switch`` events
        from the sampled sigma history and fills the normalised queue
        histograms from the recorder series.
    """

    def __init__(
        self,
        params: BCNParams,
        *,
        frame_bits: int = 1500 * 8,
        propagation_delay: float = 0.5e-6,
        initial_rate: float | None = None,
        regulator_mode: str = "message",
        fb_bits: int | None = 6,
        min_rate: float | None = None,
        enable_pause: bool = True,
        pause_duration: float = 50e-6,
        queue_sample_interval: float | None = None,
        require_association: bool = True,
        positive_only_below_q0: bool = True,
        random_sampling: bool = False,
        engine: str = "reference",
        control_quantum: float | None = None,
        obs=None,
    ) -> None:
        if engine not in PACKET_ENGINES:
            raise ValueError(
                f"unknown packet engine {engine!r}; pick from {PACKET_ENGINES}"
            )
        self.params = params
        self.frame_bits = frame_bits
        self.engine = engine
        self.sim = Simulator()
        self._propagation_delay = propagation_delay
        self._enable_pause = enable_pause
        self._pause_duration = pause_duration
        self._quantum_explicit = control_quantum is not None
        if control_quantum is None:
            # Auto window: the fluid regulator modes integrate feedback
            # over elapsed time, so the owed-bits pacing compensation
            # keeps two message intervals per window accurate; message
            # mode takes large per-message rate jumps (up to 50% each),
            # so halve the window to keep the boundary-application lag
            # inside the documented tolerance.
            emi = expected_message_interval(
                params.n_flows, frame_bits, params.pm, params.capacity
            )
            control_quantum = emi if regulator_mode == "message" else 2.0 * emi
        self._control_quantum = control_quantum
        if initial_rate is None:
            # Start in mild overload so the BCN loop engages: at exactly
            # the fair share the queue never builds and (per the draft)
            # no source ever associates with the congestion point.
            initial_rate = 1.5 * params.capacity / params.n_flows
        if min_rate is None:
            min_rate = min(1e6, initial_rate)
        self._regulator_mode = regulator_mode
        self._initial_rate = initial_rate
        self._min_rate = min_rate
        #: Timed events ``(t, seq, kind, payload)`` injected by the
        #: scenario layer; ``seq`` preserves registration order among
        #: same-timestamp events (see :meth:`schedule_capacity`).
        self._timed_events: list[tuple[float, int, str, tuple]] = []
        self._queue_dt = (
            queue_sample_interval
            if queue_sample_interval is not None
            else 50 * frame_bits / params.capacity
        )

        self.switch = CoreSwitch(
            self.sim,
            cpid="core-0",
            capacity=params.capacity,
            q0=params.q0,
            buffer_bits=params.buffer_size,
            w=params.w,
            pm=params.pm,
            q_sc=params.severe_threshold if enable_pause else None,
            pause_duration=pause_duration,
            forward=self._deliver,
            require_association=require_association,
            positive_only_below_q0=positive_only_below_q0,
            fb_bits=fb_bits,
            random_sampling=random_sampling,
        )
        self.obs = obs if (obs is not None and obs.enabled) else None
        self.switch.attach_obs(self.obs, f"packet.{engine}")

        self.sources: list[TrafficSource] = []
        self._delivered_bits = 0.0
        self._queue_samples = _SeriesBuffer()
        self._rate_samples = _SeriesBuffer()

        for i in range(params.n_flows):
            regulator = RateRegulator(
                gi=params.gi,
                gd=params.gd,
                ru=params.ru,
                initial_rate=initial_rate,
                min_rate=min_rate,
                line_rate=params.capacity,
                mode=regulator_mode,
                max_dt=4.0
                * expected_message_interval(
                    params.n_flows, frame_bits, params.pm, params.capacity
                ),
            )
            uplink = Link(self.sim, propagation_delay, self.switch.receive)
            source = TrafficSource(
                self.sim,
                address=i,
                regulator=regulator,
                send=uplink.transmit,
                frame_bits=frame_bits,
            )
            backlink = Link(self.sim, propagation_delay, source.receive_control)
            self.switch.register_bcn_link(i, backlink)
            if enable_pause:
                self.switch.register_pause_link(backlink)
            self.sources.append(source)

    # -- internal ------------------------------------------------------------

    def _deliver(self, frame: EthernetFrame) -> None:
        self._delivered_bits += frame.size_bits

    def _record(self) -> None:
        self._queue_samples.append(self.sim.now, self.switch.queue_bits)
        total_rate = sum(s.rate for s in self.sources)
        self._rate_samples.append(self.sim.now, total_rate)

    # -- scenario hooks: dynamic flows and timed events -------------------

    def add_flow(
        self,
        *,
        start_time: float = 0.0,
        demand: float | None = None,
        size_bits: float | None = None,
    ) -> TrafficSource:
        """Add a dynamic flow (declared before :meth:`run`).

        The flow's source starts pacing at ``start_time``, sends at up
        to ``demand`` bits/s (default: the base initial rate) under the
        same BCN regulator laws as the built-in sources, and — when
        ``size_bits`` is given — stops after that many bits, recording
        its send-side completion in ``TrafficSource.finish_time``.
        Both packet engines honour all three knobs identically.
        """
        if demand is None:
            demand = self._initial_rate
        if demand <= 0:
            raise ValueError("demand must be positive")
        address = len(self.sources)
        regulator = RateRegulator(
            gi=self.params.gi,
            gd=self.params.gd,
            ru=self.params.ru,
            initial_rate=demand,
            min_rate=min(self._min_rate, demand),
            line_rate=demand,
            mode=self._regulator_mode,
            max_dt=4.0
            * expected_message_interval(
                self.params.n_flows, self.frame_bits, self.params.pm,
                self.params.capacity,
            ),
        )
        uplink = Link(self.sim, self._propagation_delay, self.switch.receive)
        source = TrafficSource(
            self.sim,
            address=address,
            regulator=regulator,
            send=uplink.transmit,
            frame_bits=self.frame_bits,
            total_bits=size_bits,
            start_time=start_time,
        )
        backlink = Link(self.sim, self._propagation_delay,
                        source.receive_control)
        self.switch.register_bcn_link(address, backlink)
        if self._enable_pause:
            self.switch.register_pause_link(backlink)
        self.sources.append(source)
        return source

    def _register_event(self, t: float, kind: str, payload: tuple) -> None:
        if t < 0:
            raise ValueError("event time cannot be negative")
        self._timed_events.append((t, len(self._timed_events), kind, payload))

    def schedule_capacity(self, t: float, capacity: float) -> None:
        """At time ``t`` change the bottleneck service rate to ``capacity``.

        Takes effect from the next service start (store-and-forward);
        the batched engine truncates its control window at ``t`` so the
        rate is constant within every window.  Same-timestamp events
        apply in registration order.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._register_event(t, "capacity", (capacity,))

    def schedule_outage(self, t: float, outage_duration: float) -> None:
        """Black out the bottleneck egress during ``[t, t + duration)``.

        The in-flight frame completes; no new service starts while the
        link is down.  Arrivals keep queueing and drop-tail keeps
        applying, so a long outage fills the buffer and drops.
        """
        if outage_duration <= 0:
            raise ValueError("outage_duration must be positive")
        self._register_event(t, "outage", (outage_duration,))

    def schedule_departure(self, t: float, address: int) -> None:
        """At time ``t`` mute source ``address`` permanently.

        Departure is a permanent mute: the regulator state stays in
        place (its rate still counts toward the recorded aggregate,
        matching both engines) but no further frames are emitted.
        """
        if not 0 <= address:
            raise ValueError("address must be non-negative")
        self._register_event(t, "departure", (address,))

    def _apply_event(self, kind: str, payload: tuple) -> None:
        """Apply one timed event (reference engine, at its sim time)."""
        if kind == "capacity":
            self.switch.set_capacity(payload[0])
        elif kind == "outage":
            self.switch.suspend_service(self.sim.now + payload[0])
        elif kind == "departure":
            self.sources[payload[0]].muted = True
        else:  # pragma: no cover - _register_event controls the kinds
            raise ValueError(f"unknown event kind {kind!r}")

    def _run_batched(self, duration: float) -> None:
        """Drive the scenario with frame-train batching.

        The run advances in control-quantum windows.  Within a window
        every regulator's rate is frozen, so each source contributes an
        arithmetic emission train (the maths of
        :meth:`~repro.simulation.source.TrafficSource.plan_train`, held
        vectorized across sources); the merged train goes through the
        vectorized switch kernel, which returns the BCN messages (and
        possibly a PAUSE) the window generated.  Control is delivered to
        the sources at the window boundary with its true timestamps —
        the regulator arithmetic (including the fluid modes' ``dt``
        integration) is exact, but a rate update takes effect on pacing
        up to one window later than under the reference engine.  The
        first-order part of that lag is compensated: each update books
        the bits the new rate would have (not) sent before the boundary
        and shifts the source's next emission to repay them, so the
        emitted bit count tracks the reference pacing to second order
        in the quantum.  A PAUSE truncates the window so its boundary
        stays sharp; a window where drop-tail engages is replayed
        frame-by-frame by the kernel's exact scalar fallback.

        Timed events (:meth:`schedule_capacity`, :meth:`schedule_outage`,
        :meth:`schedule_departure`) are additional window boundaries:
        ``t_end`` clamps to the next event time, the event applies when
        the clock lands exactly on it, and the per-source state arrays
        are re-synced before the next window is planned.  Dynamic flows
        (``start_time`` / ``total_bits``) need no boundary — a start
        mid-window is just a later first emission of the arithmetic
        train, and finite flows cap their train at the frames they have
        left.
        """
        if any(s.muted for s in self.sources):
            raise NotImplementedError(
                "the batched engine cannot pace initially-muted (on/off) "
                "sources; use engine='reference' for those workloads"
            )
        d = self._propagation_delay
        L = float(self.frame_bits)
        n = len(self.sources)
        cpid = self.switch.cpid
        kernel = BatchedSwitchKernel(
            self.switch,
            self.frame_bits,
            pause_fanout=n if self._enable_pause else 0,
            # Frames emitted before a PAUSE reaches their source (one
            # propagation delay control-path, then one data-path back)
            # are in flight and must land, as in the reference engine.
            pause_commit_horizon=2.0 * d,
        )
        self._batched_kernel = kernel
        # The auto quantum (2x the expected message interval) assumes the
        # run is long relative to the control loop; cap it so short runs
        # still get enough windows for the boundary-applied messages to
        # track the reference dynamics.  An explicit control_quantum is
        # always respected.
        quantum = self._control_quantum
        if not self._quantum_explicit:
            quantum = min(quantum, duration / 32.0)
        dt = self._queue_dt

        # Recorder grid mirroring the reference engine: one sample at
        # t=0, one per tick, and a final sample at `duration` (which
        # duplicates the last tick when duration is a tick multiple,
        # exactly as the event-driven recorder does).
        ticks = dt * np.arange(1, int(np.floor(duration / dt + 1e-9)) + 1)
        grid = np.concatenate([ticks[ticks <= duration], [duration]])
        grid_pos = 0
        self._record()

        # Pacing state, one slot per source.
        src_idx = np.arange(n)
        rates = np.array([s.regulator.rate for s in self.sources])
        total_rate = float(rates.sum())
        gaps = L / rates
        # First emission one gap after each flow's start time.
        next_emit = np.array([s.start_time for s in self.sources]) + gaps
        paused = np.zeros(n)
        assoc_flags = np.array(
            [s.regulator.associated_cpid == cpid for s in self.sources]
        )
        #: Emitting sources; cleared on departure or flow completion.
        active = np.ones(n, dtype=bool)
        #: Frames each finite flow still has to send (inf = persistent).
        remaining = np.array([
            np.inf if s.total_bits is None
            else float(np.ceil(s.total_bits / L))
            for s in self.sources
        ])
        frames_acc = np.zeros(n, dtype=int)
        owed_bits = np.zeros(n)  # lag-compensation ledger

        events = sorted(self._timed_events)
        ev_pos = 0

        t = 0.0
        while t < duration:
            # Apply every timed event the clock has reached; each is a
            # window boundary, so normally ev_t == t exactly.
            while ev_pos < len(events) and events[ev_pos][0] <= t:
                ev_t, _, kind, payload = events[ev_pos]
                ev_pos += 1
                if kind == "capacity":
                    kernel.set_capacity(payload[0])
                elif kind == "outage":
                    kernel.freeze_until(ev_t + payload[0])
                elif kind == "departure":
                    self.sources[payload[0]].muted = True
                    active[payload[0]] = False
            next_ev = events[ev_pos][0] if ev_pos < len(events) else np.inf
            t_end = min(t + quantum, duration, next_ev)
            until = t_end - d
            first = np.maximum(next_emit, paused)
            counts_f = np.where(
                active & (first <= until),
                np.floor((until - first) / gaps) + 1.0,
                0.0,
            )
            counts = np.minimum(counts_f, remaining).astype(int)
            total = int(counts.sum())
            if total:
                srcs = np.repeat(src_idx, counts)
                ends = np.cumsum(counts)
                offsets = np.arange(total) - np.repeat(ends - counts, counts)
                times = (np.repeat(first, counts)
                         + np.repeat(gaps, counts) * offsets + d)
                order = np.argsort(times, kind="stable")
                times = times[order]
                srcs = srcs[order]
                assoc = assoc_flags[srcs]
            else:
                times = np.empty(0)
                srcs = np.empty(0, dtype=int)
                assoc = np.empty(0, dtype=bool)

            window = kernel.process(t, t_end, times, srcs, assoc)

            # Advance each source's pacing by its committed prefix while
            # the planning rate is still in force.
            committed = (
                np.bincount(srcs[: window.committed], minlength=n)
                if window.committed else np.zeros(n, dtype=int)
            )
            frames_acc += committed
            has = committed > 0
            next_emit[has] = first[has] + gaps[has] * committed[has]
            held = (counts > 0) & ~has  # planned but cut off (PAUSE)
            next_emit[held] = first[held]
            remaining[has] -= committed[has]
            finished = has & (remaining <= 0)
            if np.any(finished):
                for i in np.nonzero(finished)[0]:
                    # Send-side FCT: emission time of the last frame,
                    # matching TrafficSource._emit in the reference path.
                    self.sources[i].finish_time = float(
                        first[i] + gaps[i] * (committed[i] - 1)
                    )
                active[finished] = False
            self._delivered_bits += window.delivered_bits

            # Emit recorder samples covered by this window.
            hi = int(np.searchsorted(grid, window.t_commit, side="right"))
            if hi > grid_pos:
                pts = grid[grid_pos:hi]
                self._queue_samples.extend(pts, kernel.queue_at(pts))
                self._rate_samples.extend(
                    pts, np.full(pts.size, total_rate)
                )
                grid_pos = hi

            # Deliver the window's control plane in timestamp order.
            for k in range(window.msg_t.size):
                i = int(window.msg_src[k])
                sent_at = float(window.msg_t[k])
                deliver_at = sent_at + d
                self.sim._now = deliver_at
                source = self.sources[i]
                rate_before = source.regulator.rate
                source.receive_control(
                    BCNMessage(
                        da=i,
                        sa=cpid,
                        cpid=cpid,
                        fb=float(window.msg_fb[k]),
                        q_off=float(window.msg_q_off[k]),
                        q_delta=float(window.msg_dq[k]),
                        fb_raw=float(window.msg_sigma[k]),
                        sent_at=sent_at,
                    )
                )
                rate_after = source.regulator.rate
                if rate_after != rate_before:
                    delta = rate_after - rate_before
                    owed_bits[i] += delta * max(
                        window.t_commit - deliver_at, 0.0
                    )
                    total_rate += delta
                    rates[i] = rate_after
                    gaps[i] = L / rate_after
                assoc_flags[i] = (
                    source.regulator.associated_cpid == cpid
                )
            if window.pause_at is not None and self._enable_pause:
                self.sim._now = window.pause_at + d
                pause = PauseFrame(
                    sa=cpid,
                    duration=self._pause_duration,
                    sent_at=window.pause_at,
                )
                for i, source in enumerate(self.sources):
                    source.receive_control(pause)
                    paused[i] = source.paused_until

            # Repay the lag ledger: a positive balance means the new
            # rate would have sent more bits before the boundary, so
            # the next emission moves earlier (clamped to stay beyond
            # the planned horizon; the unpaid remainder carries over).
            # Sources holding a cut-off emission keep their schedule.
            if np.any(owed_bits):
                movable = next_emit > until
                target = np.where(
                    movable,
                    np.maximum(next_emit - owed_bits / rates,
                               np.nextafter(until, np.inf)),
                    next_emit,
                )
                owed_bits -= (next_emit - target) * rates
                next_emit = target

            t = window.t_commit

        for i, source in enumerate(self.sources):
            source.frames_sent += int(frames_acc[i])
            source.bits_sent += float(frames_acc[i]) * L
            source._train_next = float(next_emit[i])
        self.sim._now = duration

    def _run_compiled(self, duration: float) -> None:
        """Drive the scenario through the compiled window kernels.

        Same orchestration as :meth:`_run_batched` — quantum windows,
        boundary-applied control, the owed-bits lag ledger — but the
        three hot loops run in compiled code: the per-source emission
        trains merge through ``merge_trains`` instead of a
        ``repeat``/``argsort`` pass, the switch window runs in a
        :class:`~repro.kernels.CompiledSwitchKernel`, and each window's
        BCN messages apply to struct-of-array regulator state through
        ``apply_messages`` (the :class:`RateRegulator` objects are
        synchronized once at the end of the run).  If no compiled
        backend is available this delegates to :meth:`_run_batched`,
        which the kernels match bit-for-bit anyway; if the sources
        carry non-uniform regulator laws or ``on_rate_change``
        observers, only the message delivery falls back to the python
        loop so every observable stays exact.
        """
        from ..kernels import (CompiledSwitchKernel, consume_warmup_span,
                               get_backend)

        be = get_backend()
        if not be.compiled:
            self._run_batched(duration)
            return
        if any(s.muted for s in self.sources):
            raise NotImplementedError(
                "the compiled engine cannot pace initially-muted (on/off) "
                "sources; use engine='reference' for those workloads"
            )
        if self.obs is not None:
            consume_warmup_span(self.obs)
        d = self._propagation_delay
        L = float(self.frame_bits)
        n = len(self.sources)
        cpid = self.switch.cpid
        kernel = CompiledSwitchKernel(
            self.switch,
            self.frame_bits,
            pause_fanout=n if self._enable_pause else 0,
            pause_commit_horizon=2.0 * d,
            backend=be,
        )
        self._batched_kernel = kernel
        quantum = self._control_quantum
        if not self._quantum_explicit:
            quantum = min(quantum, duration / 32.0)
        dt = self._queue_dt

        ticks = dt * np.arange(1, int(np.floor(duration / dt + 1e-9)) + 1)
        grid = np.concatenate([ticks[ticks <= duration], [duration]])
        grid_pos = 0
        self._record()

        # Pacing state (identical layout to the batched engine) plus the
        # struct-of-array regulator mirror the message kernel updates in
        # place: ``rates``/``owed_bits`` serve both roles directly.
        regs = [s.regulator for s in self.sources]
        rates = np.array([r.rate for r in regs])
        total_rate = float(rates.sum())
        gaps = L / rates
        next_emit = np.array([s.start_time for s in self.sources]) + gaps
        paused = np.zeros(n)
        assoc8 = np.array(
            [1 if r.associated_cpid == cpid else 0 for r in regs],
            dtype=np.uint8,
        )
        active = np.ones(n, dtype=bool)
        remaining = np.array([
            np.inf if s.total_bits is None
            else float(np.ceil(s.total_bits / L))
            for s in self.sources
        ])
        frames_acc = np.zeros(n, dtype=np.int64)
        owed_bits = np.zeros(n)

        reg0 = regs[0]
        mode_code = {"message": 0, "fluid-euler": 1,
                     "fluid-exact": 2}.get(reg0.mode, -1)
        fast_msgs = mode_code >= 0 and all(
            s.on_rate_change is None
            and s.regulator.gi == reg0.gi
            and s.regulator.gd == reg0.gd
            and s.regulator.ru == reg0.ru
            and s.regulator.mode == reg0.mode
            and s.regulator.max_dt == reg0.max_dt
            for s in self.sources
        )
        reg_max_dt = -1.0 if reg0.max_dt is None else float(reg0.max_dt)
        last_update = np.array([
            np.nan if r._last_update is None else r._last_update
            for r in regs
        ])
        updates = np.zeros(n, dtype=np.int64)
        min_rate_a = np.array([r.min_rate for r in regs])
        line_rate_a = np.array([r.line_rate for r in regs])
        reg_d = np.empty(1)

        events = sorted(self._timed_events)
        ev_pos = 0

        # Persistent per-window work buffers: passing the *same* array
        # objects to the kernels every window lets the cffi backend
        # cache its pointer casts (see ``_CffiKernels._ptr``).
        first = np.empty(n)
        counts = np.empty(n, dtype=np.int64)
        comm = np.empty(n, dtype=np.int64)
        fin_idx = np.empty(n, dtype=np.int64)
        fin_t = np.empty(n)
        merge_t = np.empty(max(64, 4 * n))
        merge_src = np.empty(merge_t.shape[0], dtype=np.int64)
        merge_assoc = np.empty(merge_t.shape[0], dtype=np.uint8)
        empty_t = np.empty(0)
        empty_src = np.empty(0, dtype=np.int64)
        empty_assoc = np.empty(0, dtype=np.uint8)
        # Sources with ``total_bits=None`` never finish, so the finish
        # bookkeeping can be skipped wholesale for pure-elephant runs.
        any_finite = 1 if np.isfinite(remaining).any() else 0

        # Bound closures: argument marshalling (and, on the cffi tier,
        # the pointer casts for every persistent array) happens once
        # here instead of on each of the ~10^3..10^5 window iterations.
        # Closures capture array *objects*, so any rebinding of the
        # arrays above must re-bind the closure too (see the merge
        # buffer growth branch below).
        bound_pacing_plan = be.bind_pacing_plan(
            next_emit, paused, active, remaining, gaps, first, counts)
        bound_merge = be.bind_merge_trains(
            first, gaps, counts, assoc8, merge_t, merge_src, merge_assoc)
        bound_pacing_commit = be.bind_pacing_commit(
            merge_src, first, gaps, counts, any_finite, next_emit,
            remaining, active, frames_acc, comm, fin_idx, fin_t)
        bound_owed = be.bind_owed_repay(owed_bits, next_emit, rates)
        bound_apply = None
        if fast_msgs:
            bound_apply = be.bind_apply_messages(
                mode_code, reg0.gi, reg0.gd, reg0.ru, reg_max_dt, d,
                rates, last_update, assoc8, updates, min_rate_a,
                line_rate_a, owed_bits, reg_d)

        t = 0.0
        while t < duration:
            while ev_pos < len(events) and events[ev_pos][0] <= t:
                ev_t, _, kind, payload = events[ev_pos]
                ev_pos += 1
                if kind == "capacity":
                    kernel.set_capacity(payload[0])
                elif kind == "outage":
                    kernel.freeze_until(ev_t + payload[0])
                elif kind == "departure":
                    self.sources[payload[0]].muted = True
                    active[payload[0]] = False
            next_ev = events[ev_pos][0] if ev_pos < len(events) else np.inf
            t_end = min(t + quantum, duration, next_ev)
            until = t_end - d
            total = int(bound_pacing_plan(until))
            if total:
                if total > merge_t.shape[0]:
                    merge_t = np.empty(2 * total)
                    merge_src = np.empty(2 * total, dtype=np.int64)
                    merge_assoc = np.empty(2 * total, dtype=np.uint8)
                    bound_merge = be.bind_merge_trains(
                        first, gaps, counts, assoc8,
                        merge_t, merge_src, merge_assoc)
                    bound_pacing_commit = be.bind_pacing_commit(
                        merge_src, first, gaps, counts, any_finite,
                        next_emit, remaining, active, frames_acc,
                        comm, fin_idx, fin_t)
                bound_merge(d)
                times = merge_t[:total]
                srcs = merge_src[:total]
                assoc = merge_assoc[:total]
            else:
                times, srcs, assoc = empty_t, empty_src, empty_assoc

            window = kernel.process(t, t_end, times, srcs, assoc)

            n_fin = int(bound_pacing_commit(window.committed))
            for k in range(n_fin):
                self.sources[int(fin_idx[k])].finish_time = float(fin_t[k])
            self._delivered_bits += window.delivered_bits

            hi = int(np.searchsorted(grid, window.t_commit, side="right"))
            if hi > grid_pos:
                pts = grid[grid_pos:hi]
                self._queue_samples.extend(pts, kernel.queue_at(pts))
                self._rate_samples.extend(
                    pts, np.full(pts.size, total_rate)
                )
                grid_pos = hi

            if fast_msgs:
                if window.msg_t.size:
                    reg_d[0] = total_rate
                    bound_apply(window.msg_t, window.msg_src,
                                window.msg_fb, window.msg_sigma,
                                window.t_commit)
                    total_rate = float(reg_d[0])
                    np.divide(L, rates, out=gaps)
            else:
                for k in range(window.msg_t.size):
                    i = int(window.msg_src[k])
                    sent_at = float(window.msg_t[k])
                    deliver_at = sent_at + d
                    self.sim._now = deliver_at
                    source = self.sources[i]
                    rate_before = source.regulator.rate
                    source.receive_control(
                        BCNMessage(
                            da=i,
                            sa=cpid,
                            cpid=cpid,
                            fb=float(window.msg_fb[k]),
                            q_off=float(window.msg_q_off[k]),
                            q_delta=float(window.msg_dq[k]),
                            fb_raw=float(window.msg_sigma[k]),
                            sent_at=sent_at,
                        )
                    )
                    rate_after = source.regulator.rate
                    if rate_after != rate_before:
                        delta = rate_after - rate_before
                        owed_bits[i] += delta * max(
                            window.t_commit - deliver_at, 0.0
                        )
                        total_rate += delta
                        rates[i] = rate_after
                        gaps[i] = L / rate_after
                    assoc8[i] = (
                        1 if source.regulator.associated_cpid == cpid
                        else 0
                    )
            if window.pause_at is not None and self._enable_pause:
                self.sim._now = window.pause_at + d
                pause = PauseFrame(
                    sa=cpid,
                    duration=self._pause_duration,
                    sent_at=window.pause_at,
                )
                for i, source in enumerate(self.sources):
                    source.receive_control(pause)
                    paused[i] = source.paused_until

            bound_owed(until, np.nextafter(until, np.inf))

            t = window.t_commit

        for i, source in enumerate(self.sources):
            source.frames_sent += int(frames_acc[i])
            source.bits_sent += float(frames_acc[i]) * L
            source._train_next = float(next_emit[i])
        if fast_msgs:
            # Fold the struct-of-array regulator state back into the
            # RateRegulator objects so post-run inspection matches the
            # batched engine exactly.
            for i, reg in enumerate(regs):
                reg.rate = float(rates[i])
                lu = float(last_update[i])
                reg._last_update = None if lu != lu else lu
                reg.updates_applied += int(updates[i])
                reg.associated_cpid = cpid if assoc8[i] else None
        self.sim._now = duration

    # -- driving ---------------------------------------------------------------

    def run(self, duration: float) -> SimulationResult:
        """Run the scenario for ``duration`` seconds of simulated time."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        wall_start = _time.monotonic() if self.obs is not None else 0.0  # repro-lint: disable=wall-clock -- obs run-span wall-time
        if self.engine == "batched":
            self._run_batched(duration)
        elif self.engine == "compiled":
            self._run_compiled(duration)
        else:
            # Timed events first: heap ties at the same timestamp break
            # by insertion order, so events registered here fire before
            # any frame arrival scheduled mid-run for the same instant.
            for t_event, _, kind, payload in sorted(self._timed_events):
                self.sim.schedule_at(
                    t_event,
                    lambda kind=kind, payload=payload: self._apply_event(
                        kind, payload
                    ),
                )
            for source in self.sources:
                if source.start_time > 0.0:
                    self.sim.schedule_at(source.start_time, source.start)
                else:
                    source.start()
            self._record()
            self.sim.schedule_every(
                self._queue_dt, self._record, until=duration
            )
            self.sim.run(until=duration)
            self._record()

        t_q, q = self._queue_samples.arrays()
        t_r, r = self._rate_samples.arrays()
        if self.obs is not None:
            from ..obs import emit_sign_switches
            engine_tag = f"packet.{self.engine}"
            self.obs.add_span(f"{engine_tag}.run",
                              _time.monotonic() - wall_start)  # repro-lint: disable=wall-clock -- obs run-span wall-time
            # The control law is evaluated at sample instants only, so
            # region membership is known exactly there: a sign change of
            # the sampled sigma is a region switch in either engine.
            hist = self.switch.sigma_history
            emit_sign_switches(self.obs, [h[0] for h in hist],
                               [h[1] for h in hist], engine=engine_tag,
                               node=self.switch.cpid)
            self.obs.observe_queue(engine_tag, q,
                                   self.params.buffer_size, self.params.q0)
        return SimulationResult(
            t=t_q,
            queue=q,
            rate_t=t_r,
            rate_total=r,
            per_source_rate=np.array([s.rate for s in self.sources]),
            dropped_frames=self.switch.queue.dropped_frames,
            forwarded_frames=self.switch.stats.forwarded_frames,
            bcn_negative=self.switch.stats.bcn_negative,
            bcn_positive=self.switch.stats.bcn_positive,
            pauses=self.switch.stats.pauses_sent,
            delivered_bits=self._delivered_bits,
            duration=duration,
            capacity=self.params.capacity,
        )

"""Single-bottleneck (dumbbell) BCN network simulator.

Wires the paper's reference scenario (Fig. 1): ``N`` homogeneous sources
behind edge rate regulators, one core switch with a BCN congestion
point, and a sink — all over links with configurable propagation delay.
:class:`BCNNetworkSimulator` builds the network from a
:class:`~repro.core.parameters.BCNParams`, runs it, and returns a
:class:`SimulationResult` with the queue trajectory, per-source rates,
drop/PAUSE/BCN counters and derived metrics (utilisation, Jain fairness,
peak queue), ready to be compared against the fluid model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parameters import BCNParams
from .engine import Simulator
from .frames import EthernetFrame
from .link import Link
from .source import RateRegulator, TrafficSource, expected_message_interval
from .switch import CoreSwitch

__all__ = ["SimulationResult", "BCNNetworkSimulator"]


@dataclass
class SimulationResult:
    """Outcome of a packet-level run.

    Attributes
    ----------
    t, queue:
        Sampled queue-length series (seconds, bits).
    rate_t, rate_total:
        Sampled aggregate offered rate series (sum of regulator rates).
    per_source_rate:
        Final per-source rates in bits/s.
    dropped_frames, forwarded_frames:
        Bottleneck counters.
    bcn_negative, bcn_positive, pauses:
        Control-plane counters.
    delivered_bits:
        Bits serviced by the bottleneck over the run.
    duration:
        Simulated horizon in seconds.
    """

    t: np.ndarray
    queue: np.ndarray
    rate_t: np.ndarray
    rate_total: np.ndarray
    per_source_rate: np.ndarray
    dropped_frames: int
    forwarded_frames: int
    bcn_negative: int
    bcn_positive: int
    pauses: int
    delivered_bits: float
    duration: float
    capacity: float

    def utilization(self, *, settle: float = 0.0) -> float:
        """Bottleneck utilisation over ``[settle, duration]``."""
        horizon = self.duration - settle
        if horizon <= 0:
            raise ValueError("settle must be below the run duration")
        return self.delivered_bits / (self.capacity * self.duration) if settle == 0 else (
            self.delivered_bits / (self.capacity * self.duration)
        )

    def jain_fairness(self) -> float:
        """Jain's fairness index of the final per-source rates."""
        r = self.per_source_rate
        if r.size == 0 or float(np.sum(r * r)) == 0.0:
            return 1.0
        return float(np.sum(r)) ** 2 / (r.size * float(np.sum(r * r)))

    def queue_peak(self) -> float:
        return float(self.queue.max()) if self.queue.size else 0.0

    def queue_mean(self, *, settle: float = 0.0) -> float:
        mask = self.t >= settle
        return float(self.queue[mask].mean()) if mask.any() else 0.0

    def queue_std(self, *, settle: float = 0.0) -> float:
        mask = self.t >= settle
        return float(self.queue[mask].std()) if mask.any() else 0.0


class BCNNetworkSimulator:
    """Builds and runs the dumbbell BCN scenario of Fig. 1.

    Parameters
    ----------
    params:
        Physical BCN parameters (capacity, gains, thresholds...).
    frame_bits:
        Data frame size; default 1500 bytes.
    propagation_delay:
        One-way link delay (data and control paths alike); the paper's
        model takes it negligible, default 0.5 us as in the Section IV
        example.
    initial_rate:
        Per-source starting rate; defaults to 1.5x the fair share so
        congestion forms and the BCN loop engages.
    regulator_mode:
        ``"message"`` (draft per-message AIMD on the quantized FB
        field), ``"fluid-euler"`` or ``"fluid-exact"`` (integrate the
        fluid laws between messages); see
        :class:`repro.simulation.source.RateRegulator`.
    fb_bits:
        FB quantization width at the switch (None = raw sigma).
    require_association:
        Gate positive BCN on RRT/CPID match (draft behaviour); set
        False for the paper's idealised unconditional positive feedback.
    enable_pause:
        Wire 802.3x PAUSE from the core switch back to the sources.
    queue_sample_interval:
        Recorder period for the queue series; defaults to 50 service
        times.
    """

    def __init__(
        self,
        params: BCNParams,
        *,
        frame_bits: int = 1500 * 8,
        propagation_delay: float = 0.5e-6,
        initial_rate: float | None = None,
        regulator_mode: str = "message",
        fb_bits: int | None = 6,
        min_rate: float | None = None,
        enable_pause: bool = True,
        pause_duration: float = 50e-6,
        queue_sample_interval: float | None = None,
        require_association: bool = True,
        positive_only_below_q0: bool = True,
        random_sampling: bool = False,
    ) -> None:
        self.params = params
        self.frame_bits = frame_bits
        self.sim = Simulator()
        if initial_rate is None:
            # Start in mild overload so the BCN loop engages: at exactly
            # the fair share the queue never builds and (per the draft)
            # no source ever associates with the congestion point.
            initial_rate = 1.5 * params.capacity / params.n_flows
        if min_rate is None:
            min_rate = min(1e6, initial_rate)
        self._queue_dt = (
            queue_sample_interval
            if queue_sample_interval is not None
            else 50 * frame_bits / params.capacity
        )

        self.switch = CoreSwitch(
            self.sim,
            cpid="core-0",
            capacity=params.capacity,
            q0=params.q0,
            buffer_bits=params.buffer_size,
            w=params.w,
            pm=params.pm,
            q_sc=params.severe_threshold if enable_pause else None,
            pause_duration=pause_duration,
            forward=self._deliver,
            require_association=require_association,
            positive_only_below_q0=positive_only_below_q0,
            fb_bits=fb_bits,
            random_sampling=random_sampling,
        )

        self.sources: list[TrafficSource] = []
        self._delivered_bits = 0.0
        self._queue_samples: list[tuple[float, float]] = []
        self._rate_samples: list[tuple[float, float]] = []

        for i in range(params.n_flows):
            regulator = RateRegulator(
                gi=params.gi,
                gd=params.gd,
                ru=params.ru,
                initial_rate=initial_rate,
                min_rate=min_rate,
                line_rate=params.capacity,
                mode=regulator_mode,
                max_dt=4.0
                * expected_message_interval(
                    params.n_flows, frame_bits, params.pm, params.capacity
                ),
            )
            uplink = Link(self.sim, propagation_delay, self.switch.receive)
            source = TrafficSource(
                self.sim,
                address=i,
                regulator=regulator,
                send=uplink.transmit,
                frame_bits=frame_bits,
            )
            backlink = Link(self.sim, propagation_delay, source.receive_control)
            self.switch.register_bcn_link(i, backlink)
            if enable_pause:
                self.switch.register_pause_link(backlink)
            self.sources.append(source)

    # -- internal ------------------------------------------------------------

    def _deliver(self, frame: EthernetFrame) -> None:
        self._delivered_bits += frame.size_bits

    def _record(self) -> None:
        self._queue_samples.append((self.sim.now, self.switch.queue_bits))
        total_rate = sum(s.rate for s in self.sources)
        self._rate_samples.append((self.sim.now, total_rate))

    # -- driving ---------------------------------------------------------------

    def run(self, duration: float) -> SimulationResult:
        """Run the scenario for ``duration`` seconds of simulated time."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        for source in self.sources:
            source.start()
        self._record()
        self.sim.schedule_every(self._queue_dt, self._record, until=duration)
        self.sim.run(until=duration)
        self._record()

        t_q = np.array([t for t, _ in self._queue_samples])
        q = np.array([v for _, v in self._queue_samples])
        t_r = np.array([t for t, _ in self._rate_samples])
        r = np.array([v for _, v in self._rate_samples])
        return SimulationResult(
            t=t_q,
            queue=q,
            rate_t=t_r,
            rate_total=r,
            per_source_rate=np.array([s.rate for s in self.sources]),
            dropped_frames=self.switch.queue.dropped_frames,
            forwarded_frames=self.switch.stats.forwarded_frames,
            bcn_negative=self.switch.stats.bcn_negative,
            bcn_positive=self.switch.stats.bcn_positive,
            pauses=self.switch.stats.pauses_sent,
            delivered_bits=self._delivered_bits,
            duration=duration,
            capacity=self.params.capacity,
        )

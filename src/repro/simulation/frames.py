"""Frame types of the BCN data plane and control plane.

Three frame families circulate in a BCN-managed Ethernet (Section II.B):

* :class:`EthernetFrame` — data frames.  A frame from a source that is
  associated with a congestion point carries a **Rate Regulator Tag**
  (RRT) holding that congestion point's CPID, so the switch can match
  sampled frames against itself and emit *positive* feedback when the
  queue has drained below ``q0``.
* :class:`BCNMessage` — the backward congestion notification, following
  the 802.1Q-tag format of Fig. 2: destination/source addresses, an
  EtherType marking it as BCN, the **CPID** (congestion point
  identifier — at least the MAC of the switch interface) and the **FB**
  field carrying the measure ``sigma = (q0 - q) - w * dq``.  The paper's
  model additionally exposes the raw queue offset and delta, which we
  carry explicitly.
* :class:`PauseFrame` — IEEE 802.3x PAUSE, emitted when the queue
  exceeds the severe-congestion threshold ``q_sc``; it silences the
  upstream sender for ``duration`` seconds.

Sizes are in bits (Ethernet's 64-byte minimum frame applies to the
control messages).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["EthernetFrame", "BCNMessage", "PauseFrame", "BCN_ETHERTYPE"]

#: EtherType value marking BCN messages (the draft used a 802.1Q-tagged
#: format; any reserved value serves the simulation).
BCN_ETHERTYPE = 0x8906

#: Minimum Ethernet frame size in bits (64 bytes).
MIN_FRAME_BITS = 64 * 8

_frame_ids = itertools.count()


@dataclass
class EthernetFrame:
    """A data frame travelling source -> core switch -> sink.

    Attributes
    ----------
    src, dst:
        Endpoint identifiers (source index / sink name).
    size_bits:
        Frame size in bits, headers included.
    flow_id:
        Flow the frame belongs to (one flow per source here).
    rrt_cpid:
        CPID carried in the Rate Regulator Tag, or None when the source
        is not associated with any congestion point.
    created_at:
        Simulation time at which the source emitted the frame.
    """

    src: int
    dst: str
    size_bits: int
    flow_id: int
    rrt_cpid: str | None = None
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_frame_ids))


@dataclass(frozen=True)
class BCNMessage:
    """Backward Congestion Notification message (Fig. 2 format).

    ``fb`` is the feedback measure ``sigma``; positive values instruct
    additive increase, negative values multiplicative decrease (eq. 2).
    """

    da: int  #: destination — the source address of the sampled frame
    sa: str  #: source — the switch address
    cpid: str  #: congestion point identifier
    fb: float  #: the FB field: sigma, possibly quantized to a few bits
    q_off: float  #: raw queue offset ``q0 - q`` at sampling time
    q_delta: float  #: queue variation over the sampling interval
    fb_raw: float = 0.0  #: unquantized sigma in bits (model-side view)
    sent_at: float = 0.0

    @property
    def positive(self) -> bool:
        """True for positive feedback (``sigma > 0``)."""
        return self.fb > 0

    @property
    def size_bits(self) -> int:
        return MIN_FRAME_BITS


@dataclass(frozen=True)
class PauseFrame:
    """IEEE 802.3x PAUSE frame.

    ``duration`` is the silence interval in seconds (the wire format
    quantises it in units of 512 bit-times; we keep seconds for clarity
    and convert in the switch).
    """

    sa: str
    duration: float
    sent_at: float = 0.0

    @property
    def size_bits(self) -> int:
        return MIN_FRAME_BITS

"""Wire format of the BCN message (Fig. 2 of the paper).

The BCN message follows the 802.1Q VLAN-tag format so BCN-aware and
BCN-unaware switches coexist.  Fig. 2 gives the layout (bit offsets of
field boundaries: 0, 47, 95, 111, 127, 143, 175, 207):

======  ==========  ====================================================
bits    field       content
======  ==========  ====================================================
0-47    DA          destination address = source of the sampled frame
48-95   SA          source address = the switch interface
96-111  EtherType   marks the frame as a BCN message
112-127 (tag ctrl)  802.1Q tag control / reserved
128-143 version     reserved / version word
144-175 CPID        congestion point identifier (switch interface MAC
                    plus port qualifier; 32 bits on the wire here)
176-207 FB          the feedback measure sigma, as a signed fixed-point
                    quantity in units of the switch's sigma quantum
======  ==========  ====================================================

This module packs and unpacks :class:`~repro.simulation.frames.BCNMessage`
to/from this 26-byte layout, exercising the part of the mechanism the
analytical model abstracts away: the feedback really does fit in a
minimum-size Ethernet frame, and quantization on the wire is lossy in
exactly the way the FB-width experiments assume.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .frames import BCN_ETHERTYPE, BCNMessage

__all__ = ["WireBCN", "pack_bcn", "unpack_bcn", "WIRE_LENGTH_BYTES"]

#: Total length of the Fig. 2 layout in bytes (208 bits).
WIRE_LENGTH_BYTES = 26

_STRUCT = struct.Struct(">6s6sHHHIi")  # DA SA EtherType TCI VER CPID FB
assert _STRUCT.size == WIRE_LENGTH_BYTES

#: 802.1Q tag control word carried in the reserved field.
_DEFAULT_TCI = 0x0000
_VERSION = 0x0001

#: FB is signed 32-bit on the wire; the quantum scales raw sigma (bits)
#: into wire units.
FB_MIN, FB_MAX = -(2**31), 2**31 - 1


def _address_to_bytes(address: int) -> bytes:
    if not 0 <= address < 2**48:
        raise ValueError(f"address must fit in 48 bits, got {address}")
    return address.to_bytes(6, "big")


def _cpid_to_int(cpid: str) -> int:
    """Fold an arbitrary CPID string into the 32-bit wire field."""
    value = 0
    for byte in cpid.encode():
        value = ((value * 131) + byte) % (2**32)
    return value


@dataclass(frozen=True)
class WireBCN:
    """A decoded Fig. 2 frame."""

    da: int
    sa: int
    ethertype: int
    tci: int
    version: int
    cpid: int
    fb_quanta: int

    @property
    def is_bcn(self) -> bool:
        return self.ethertype == BCN_ETHERTYPE

    @property
    def positive(self) -> bool:
        return self.fb_quanta > 0


def pack_bcn(
    message: BCNMessage,
    *,
    switch_address: int = 0x0000_5E00_0001,
    sigma_quantum: float = 1.0,
) -> bytes:
    """Serialise a BCN message into the Fig. 2 layout.

    ``sigma_quantum`` converts the model's sigma (bits) into wire FB
    units; values beyond the signed-32-bit range saturate, mirroring the
    switch-side clamping.
    """
    if sigma_quantum <= 0:
        raise ValueError("sigma_quantum must be positive")
    fb = round(message.fb / sigma_quantum)
    fb = max(FB_MIN, min(FB_MAX, fb))
    return _STRUCT.pack(
        _address_to_bytes(message.da),
        _address_to_bytes(switch_address),
        BCN_ETHERTYPE,
        _DEFAULT_TCI,
        _VERSION,
        _cpid_to_int(message.cpid),
        fb,
    )


def unpack_bcn(payload: bytes) -> WireBCN:
    """Decode a Fig. 2 frame; raises ValueError on a malformed one."""
    if len(payload) != WIRE_LENGTH_BYTES:
        raise ValueError(
            f"BCN frame must be {WIRE_LENGTH_BYTES} bytes, got {len(payload)}"
        )
    da, sa, ethertype, tci, version, cpid, fb = _STRUCT.unpack(payload)
    return WireBCN(
        da=int.from_bytes(da, "big"),
        sa=int.from_bytes(sa, "big"),
        ethertype=ethertype,
        tci=tci,
        version=version,
        cpid=cpid,
        fb_quanta=fb,
    )

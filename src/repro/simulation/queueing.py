"""Drop-tail FIFO queue measured in bits.

The core switch buffers frames in a single drop-tail FIFO whose
occupancy is measured in bits (the fluid model's ``q(t)``).  The queue
records cumulative enqueue/dequeue/drop counters so conservation
(``enqueued == dequeued + dropped + resident``) can be asserted by the
tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .frames import EthernetFrame

__all__ = ["DropTailQueue"]


@dataclass
class DropTailQueue:
    """A byte(bit)-bounded FIFO with drop-tail admission.

    Parameters
    ----------
    capacity_bits:
        Buffer size ``B``; a frame that would push occupancy beyond it
        is dropped in its entirety.
    """

    capacity_bits: float
    _frames: deque[EthernetFrame] = field(default_factory=deque)
    occupancy_bits: float = 0.0
    enqueued_frames: int = 0
    dequeued_frames: int = 0
    dropped_frames: int = 0
    enqueued_bits: float = 0.0
    dequeued_bits: float = 0.0
    dropped_bits: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bits <= 0:
            raise ValueError("capacity_bits must be positive")

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def is_empty(self) -> bool:
        return not self._frames

    def offer(self, frame: EthernetFrame) -> bool:
        """Enqueue ``frame``; returns False (and drops) when full."""
        if self.occupancy_bits + frame.size_bits > self.capacity_bits:
            self.dropped_frames += 1
            self.dropped_bits += frame.size_bits
            return False
        self._frames.append(frame)
        self.occupancy_bits += frame.size_bits
        self.enqueued_frames += 1
        self.enqueued_bits += frame.size_bits
        return True

    def poll(self) -> EthernetFrame | None:
        """Dequeue the head frame, or None when empty."""
        if not self._frames:
            return None
        frame = self._frames.popleft()
        self.occupancy_bits -= frame.size_bits
        if self.occupancy_bits < 0:  # pragma: no cover - defensive
            self.occupancy_bits = 0.0
        self.dequeued_frames += 1
        self.dequeued_bits += frame.size_bits
        return frame

    def conservation_holds(self) -> bool:
        """Frames in == frames out + dropped + resident."""
        return self.enqueued_frames == self.dequeued_frames + len(self._frames) and (
            self.enqueued_frames + self.dropped_frames
            == self.dequeued_frames + self.dropped_frames + len(self._frames)
        )

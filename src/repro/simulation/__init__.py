"""Packet-level discrete-event substrate for BCN Ethernet.

An event-driven simulator (:mod:`.engine`) with BCN-aware core switches
(:mod:`.switch`), rate-regulated sources (:mod:`.source`), delay links
(:mod:`.link`), drop-tail queues (:mod:`.queueing`) and the dumbbell
orchestrator (:mod:`.network`).  Frame formats, including the Fig. 2 BCN
message, live in :mod:`.frames`.
"""

from .engine import CalendarSimulator, Event, Simulator, make_simulator
from .frames import BCN_ETHERTYPE, BCNMessage, EthernetFrame, PauseFrame
from .link import Link
from .network import PACKET_ENGINES, BCNNetworkSimulator, SimulationResult
from .queueing import DropTailQueue
from .source import RateRegulator, TrafficSource, expected_message_interval
from .switch import BatchedSwitchKernel, BatchedWindow, CoreSwitch, SwitchStats

__all__ = [
    "Simulator",
    "CalendarSimulator",
    "make_simulator",
    "Event",
    "EthernetFrame",
    "BCNMessage",
    "PauseFrame",
    "BCN_ETHERTYPE",
    "Link",
    "DropTailQueue",
    "CoreSwitch",
    "SwitchStats",
    "BatchedSwitchKernel",
    "BatchedWindow",
    "RateRegulator",
    "TrafficSource",
    "expected_message_interval",
    "BCNNetworkSimulator",
    "SimulationResult",
    "PACKET_ENGINES",
]

from .multihop import MultiHopNetwork, MultiHopResult, PortConfig
from .tracing import FrameTracer, TraceEvent
from .wire import WIRE_LENGTH_BYTES, WireBCN, pack_bcn, unpack_bcn

__all__ += ["MultiHopNetwork", "MultiHopResult", "PortConfig",
            "pack_bcn", "unpack_bcn", "WireBCN", "WIRE_LENGTH_BYTES",
            "FrameTracer", "TraceEvent"]

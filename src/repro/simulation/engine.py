"""Discrete-event simulation engine.

A minimal, deterministic event-driven kernel: events are ``(time, seq,
callback)`` triples in a binary heap; ties in time break by insertion
order (``seq``), which keeps runs reproducible.  Components schedule
callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and may cancel them via the
returned handle.

The kernel knows nothing about networking; switches, sources and links
(:mod:`repro.simulation`) are plain objects holding a reference to the
simulator.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback; orderable by ``(time, seq)``."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0 or not math.isfinite(delay):
            raise ValueError(f"delay must be finite and non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = Event(time, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        until: float = math.inf,
    ) -> None:
        """Run ``callback`` every ``interval`` seconds until ``until``."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            callback()
            next_time = self._now + interval
            if next_time <= until:
                self.schedule_at(next_time, tick)

        self.schedule(interval, tick)

    def run(self, until: float = math.inf, *, max_events: int | None = None) -> None:
        """Process events in order until the horizon or heap exhaustion.

        Parameters
        ----------
        until:
            Stop once the next event would occur after this time; the
            clock is advanced to ``until`` if any later events remain.
        max_events:
            Safety cap on callbacks executed in this call.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            event = self._heap[0]
            if event.time > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            executed += 1
        if math.isfinite(until):
            self._now = max(self._now, until)

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        self._processed = 0


def noop() -> None:  # pragma: no cover - convenience for tests
    """A callback that does nothing."""

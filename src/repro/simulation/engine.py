"""Discrete-event simulation engines.

Two deterministic event kernels share one public API:

* :class:`Simulator` — the reference kernel: events are ``(time, seq,
  callback)`` triples in a binary heap; ties in time break by insertion
  order (``seq``), which keeps runs reproducible.
* :class:`CalendarSimulator` — a slotted calendar queue: the near
  horizon is an array of time buckets with O(1) amortised insert and
  pop (events land in ``floor(t / slot_width)`` buckets; the active
  bucket is drained in ``(time, seq)`` order), and events beyond the
  calendar horizon fall back to a binary heap that is drained into the
  buckets as the calendar advances.  Event ordering is identical to the
  reference kernel, so the two are interchangeable.

Components schedule callbacks with :meth:`Simulator.schedule` (relative
delay) or :meth:`Simulator.schedule_at` (absolute time) and may cancel
them via the returned handle.  Cancelled events are skipped lazily when
popped; when more than half of the pending events are cancelled the
queue compacts itself so long runs with heavy cancellation (rate
re-pacing, pause retries) do not leak memory.

The kernels know nothing about networking; switches, sources and links
(:mod:`repro.simulation`) are plain objects holding a reference to the
simulator.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "Simulator", "CalendarSimulator", "make_simulator"]

#: Compact the pending-event store once this fraction of it is cancelled.
_COMPACT_FRACTION = 0.5
#: ... but never bother below this many pending events.
_COMPACT_MIN_PENDING = 64


@dataclass(order=True)
class Event:
    """A scheduled callback; orderable by ``(time, seq)``."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: The simulator that owns this event (None for detached events);
    #: lets ``cancel`` feed the owner's lazy-compaction accounting.
    owner: "Simulator | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancel()


class Simulator:
    """Deterministic discrete-event simulator (binary-heap kernel).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._cancelled_pending = 0
        self._freeze_horizon = math.inf

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (cancelled ones may linger
        until the next pop or compaction)."""
        return self._queue_len()

    # -- window barrier ----------------------------------------------------

    @property
    def freeze_horizon(self) -> float:
        """Hard processing horizon for conservative window barriers.

        No event beyond the horizon is executed by :meth:`run`, even
        when a callback re-enters ``run`` with a later ``until`` — the
        guarantee a conservative parallel coordinator needs: between
        two barrier exchanges a shard can never outrun its lookahead.
        Scheduling beyond the horizon stays legal (events simply wait
        for a later window).  ``math.inf`` (the default) disables it.
        """
        return self._freeze_horizon

    def set_freeze_horizon(self, t: float) -> None:
        """Freeze event processing at ``t`` (see :attr:`freeze_horizon`)."""
        if t < self._now:
            raise ValueError(
                f"freeze horizon {t} lies before now {self._now}"
            )
        self._freeze_horizon = t

    def clear_freeze_horizon(self) -> None:
        """Remove the processing horizon."""
        self._freeze_horizon = math.inf

    def run_window(self, t_end: float) -> int:
        """Process one conservative window ``(now, t_end]`` and stop.

        Equivalent to ``run(until=t_end)`` under a freeze horizon at
        ``t_end``; the clock is left exactly at ``t_end`` and the
        number of callbacks executed is returned.  Calling it
        repeatedly with increasing ``t_end`` replays precisely the
        event sequence a single ``run`` over the union would have —
        the window barrier is invisible to the simulated system.
        """
        if not math.isfinite(t_end):
            raise ValueError("window end must be finite")
        before = self._processed
        previous = self._freeze_horizon
        self.set_freeze_horizon(t_end)
        try:
            self.run(until=t_end)
        finally:
            self._freeze_horizon = previous
        return self._processed - before

    # -- queue storage (overridden by CalendarSimulator) ------------------

    def _push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def _pop_min(self) -> Event:
        event = heapq.heappop(self._heap)
        if event.cancelled:
            self._cancelled_pending -= 1
        return event

    def _peek_min_time(self) -> float:
        return self._heap[0].time

    def _queue_len(self) -> int:
        return len(self._heap)

    def _clear(self) -> None:
        self._heap.clear()
        self._cancelled_pending = 0

    def _compact(self) -> None:
        """Drop cancelled events from the heap and re-heapify."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0

    # -- cancellation accounting ------------------------------------------

    def _note_cancel(self) -> None:
        self._cancelled_pending += 1
        pending = self._queue_len()
        if (pending > _COMPACT_MIN_PENDING
                and self._cancelled_pending > _COMPACT_FRACTION * pending):
            self._compact()

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0 or not math.isfinite(delay):
            raise ValueError(f"delay must be finite and non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = Event(time, next(self._seq), callback, owner=self)
        self._push(event)
        return event

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        until: float = math.inf,
    ) -> None:
        """Run ``callback`` every ``interval`` seconds until ``until``."""
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            callback()
            next_time = self._now + interval
            if next_time <= until:
                self.schedule_at(next_time, tick)

        self.schedule(interval, tick)

    def run(self, until: float = math.inf, *, max_events: int | None = None) -> None:
        """Process events in order until the horizon or queue exhaustion.

        Parameters
        ----------
        until:
            Stop once the next event would occur after this time; the
            clock is advanced to ``until`` if any later events remain.
        max_events:
            Safety cap on callbacks executed in this call.
        """
        until = min(until, self._freeze_horizon)
        executed = 0
        while self._queue_len():
            if max_events is not None and executed >= max_events:
                break
            if self._peek_min_time() > until:
                self._now = until
                return
            event = self._pop_min()
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            executed += 1
        if math.isfinite(until):
            self._now = max(self._now, until)

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._clear()
        self._now = 0.0
        self._processed = 0
        self._freeze_horizon = math.inf


class CalendarSimulator(Simulator):
    """Calendar-queue event kernel: slotted near horizon, heap far tail.

    The calendar covers ``n_slots * slot_width`` seconds from
    ``_horizon_start``; an event at time ``t`` within the horizon lands
    in bucket ``floor((t - _horizon_start) / slot_width)`` with an O(1)
    append.  The active bucket is heapified on first touch so events
    drain in exact ``(time, seq)`` order — the total order is identical
    to :class:`Simulator`'s.  Events beyond the horizon go to an
    overflow heap and migrate into the buckets whenever the calendar
    rolls forward one horizon length.

    Parameters
    ----------
    slot_width:
        Bucket width in seconds.  Pick it near the typical event
        spacing (e.g. one frame service time for a packet simulation);
        a poor choice degrades gracefully to heap-like behaviour.
        When omitted (``None``) the width is derived from
        ``quantum_hint`` when given — ``quantum_hint / 64``, so one
        control window spans ~64 buckets instead of collapsing into a
        single bucket — and falls back to the legacy ``1e-6`` default
        otherwise.
    n_slots:
        Number of buckets per horizon.
    quantum_hint:
        Optional control-quantum (window length) hint used to
        auto-derive ``slot_width``; ignored when ``slot_width`` is
        passed explicitly.
    """

    #: Buckets per control quantum when auto-deriving the slot width.
    _SLOTS_PER_QUANTUM = 64
    #: Legacy default bucket width when no hint is available.
    _DEFAULT_SLOT_WIDTH = 1e-6

    def __init__(
        self,
        *,
        slot_width: float | None = None,
        n_slots: int = 1024,
        quantum_hint: float | None = None,
    ) -> None:
        if slot_width is None:
            if quantum_hint is not None and quantum_hint > 0 \
                    and math.isfinite(quantum_hint):
                slot_width = quantum_hint / self._SLOTS_PER_QUANTUM
            else:
                slot_width = self._DEFAULT_SLOT_WIDTH
        if slot_width <= 0 or not math.isfinite(slot_width):
            raise ValueError("slot_width must be positive and finite")
        if n_slots < 2:
            raise ValueError("need at least 2 slots")
        super().__init__()
        self._slot_width = slot_width
        self._n_slots = n_slots
        self._horizon = slot_width * n_slots
        self._horizon_start = 0.0
        self._slots: list[list[Event]] = [[] for _ in range(n_slots)]
        self._cursor = 0  # index of the active bucket
        self._active_is_heap = False
        self._overflow: list[Event] = []
        self._size = 0

    # -- queue storage ----------------------------------------------------

    def _push(self, event: Event) -> None:
        offset = event.time - self._horizon_start
        if offset < self._horizon:
            idx = int(offset / self._slot_width)
            if idx >= self._n_slots:  # float edge: t == horizon end
                idx = self._n_slots - 1
            if idx < self._cursor:
                # schedule_at guarantees t >= now, so the event belongs
                # to the active bucket's time range at the earliest.
                idx = self._cursor
            if idx == self._cursor and self._active_is_heap:
                heapq.heappush(self._slots[idx], event)
            else:
                self._slots[idx].append(event)
        else:
            heapq.heappush(self._overflow, event)
        self._size += 1

    def _advance_to_nonempty(self) -> bool:
        """Move the cursor to the earliest non-empty bucket.

        Returns False when no events remain anywhere.
        """
        while True:
            slots = self._slots
            n = self._n_slots
            while self._cursor < n:
                bucket = slots[self._cursor]
                if bucket:
                    if not self._active_is_heap:
                        heapq.heapify(bucket)
                        self._active_is_heap = True
                    return True
                self._cursor += 1
                self._active_is_heap = False
            # Calendar exhausted: roll the horizon forward and refill
            # from the overflow heap.
            if not self._overflow:
                return False
            next_time = self._overflow[0].time
            periods = max(1, int((next_time - self._horizon_start)
                                 / self._horizon))
            self._horizon_start += periods * self._horizon
            self._cursor = 0
            self._active_is_heap = False
            horizon_end = self._horizon_start + self._horizon
            overflow = self._overflow
            while overflow and overflow[0].time < horizon_end:
                event = heapq.heappop(overflow)
                idx = int((event.time - self._horizon_start)
                          / self._slot_width)
                if idx >= n:  # float edge
                    idx = n - 1
                slots[idx].append(event)

    def _pop_min(self) -> Event:
        if not self._advance_to_nonempty():  # pragma: no cover - guarded
            raise IndexError("pop from empty calendar")
        event = heapq.heappop(self._slots[self._cursor])
        self._size -= 1
        if event.cancelled:
            self._cancelled_pending -= 1
        return event

    def _peek_min_time(self) -> float:
        if not self._advance_to_nonempty():  # pragma: no cover - guarded
            raise IndexError("peek on empty calendar")
        return self._slots[self._cursor][0].time

    def _queue_len(self) -> int:
        return self._size

    def _clear(self) -> None:
        self._slots = [[] for _ in range(self._n_slots)]
        self._overflow = []
        self._cursor = 0
        self._active_is_heap = False
        self._horizon_start = 0.0
        self._size = 0
        self._cancelled_pending = 0

    def _compact(self) -> None:
        """Drop cancelled events from every bucket and the overflow."""
        removed = 0
        for idx, bucket in enumerate(self._slots):
            if not bucket:
                continue
            kept = [e for e in bucket if not e.cancelled]
            removed += len(bucket) - len(kept)
            if idx == self._cursor and self._active_is_heap:
                heapq.heapify(kept)
            self._slots[idx] = kept
        kept_overflow = [e for e in self._overflow if not e.cancelled]
        removed += len(self._overflow) - len(kept_overflow)
        heapq.heapify(kept_overflow)
        self._overflow = kept_overflow
        self._size -= removed
        self._cancelled_pending = 0


def make_simulator(
    kernel: str = "heap",
    *,
    slot_width: float | None = None,
    n_slots: int = 1024,
    quantum_hint: float | None = None,
) -> Simulator:
    """Build an event kernel by name.

    ``"heap"`` and ``"calendar"`` are the reference kernels;
    ``"compiled"`` (alias ``"compiled-calendar"``) is the calendar
    queue with compiled slot scans from :mod:`repro.kernels`, which
    degrades to the plain calendar when no compiled backend is
    available.  ``slot_width=None`` lets the calendar derive its bucket
    width from ``quantum_hint`` (see :class:`CalendarSimulator`).
    """
    if kernel == "heap":
        return Simulator()
    if kernel == "calendar":
        return CalendarSimulator(slot_width=slot_width, n_slots=n_slots,
                                 quantum_hint=quantum_hint)
    if kernel in ("compiled", "compiled-calendar"):
        from ..kernels import CompiledCalendarSimulator

        return CompiledCalendarSimulator(slot_width=slot_width,
                                         n_slots=n_slots,
                                         quantum_hint=quantum_hint)
    raise ValueError(f"unknown event kernel {kernel!r}")


def noop() -> None:  # pragma: no cover - convenience for tests
    """A callback that does nothing."""

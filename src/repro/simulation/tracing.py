"""Event tracing for DES debugging and post-hoc analysis.

A :class:`FrameTracer` hooks into switch forward paths and control
links, recording typed events (arrival, departure, drop, bcn, pause)
into an in-memory log that can be filtered, summarised, or written out
as a text trace — the pcap stand-in for this simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .frames import BCNMessage, EthernetFrame, PauseFrame
from .switch import CoreSwitch

__all__ = ["TraceEvent", "FrameTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str  #: "arrive" | "depart" | "drop" | "bcn" | "pause"
    node: str
    flow_id: int | None = None
    detail: str = ""

    def format(self) -> str:
        flow = f" flow={self.flow_id}" if self.flow_id is not None else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"{self.time:.9f} {self.kind:<7} {self.node}{flow}{detail}"


@dataclass
class FrameTracer:
    """Collects :class:`TraceEvent` records from instrumented components."""

    events: list[TraceEvent] = field(default_factory=list)
    max_events: int | None = None

    def record(self, event: TraceEvent) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            return
        self.events.append(event)

    # -- instrumentation ----------------------------------------------------

    def attach_switch(self, switch: CoreSwitch, *, name: str | None = None) -> None:
        """Wrap a switch's data path to trace arrivals/departures/drops."""
        label = name if name is not None else switch.cpid
        original_receive = switch.receive
        original_forward = switch.forward

        def traced_receive(frame: EthernetFrame) -> None:
            drops_before = switch.queue.dropped_frames
            original_receive(frame)
            if switch.queue.dropped_frames > drops_before:
                self.record(TraceEvent(switch.sim.now, "drop", label,
                                       frame.flow_id,
                                       f"size={frame.size_bits}"))
            else:
                self.record(TraceEvent(switch.sim.now, "arrive", label,
                                       frame.flow_id,
                                       f"q={switch.queue_bits:.0f}"))

        def traced_forward(frame: EthernetFrame) -> None:
            self.record(TraceEvent(switch.sim.now, "depart", label,
                                   frame.flow_id))
            original_forward(frame)

        switch.receive = traced_receive  # type: ignore[method-assign]
        switch.forward = traced_forward

    def control_hook(self, node: str):
        """A pass-through callback wrapper for control links.

        Use as ``Link(sim, delay, tracer.control_hook("h0")(handler))``.
        """

        def wrap(handler):
            def traced(message):
                if isinstance(message, BCNMessage):
                    self.record(TraceEvent(message.sent_at, "bcn", node,
                                           message.da,
                                           f"fb={message.fb:+g}"))
                elif isinstance(message, PauseFrame):
                    self.record(TraceEvent(message.sent_at, "pause", node,
                                           None,
                                           f"dur={message.duration:g}"))
                handler(message)

            return traced

        return wrap

    # -- querying -----------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_flow(self, flow_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def between(self, t0: float, t1: float) -> list[TraceEvent]:
        return [e for e in self.events if t0 <= e.time < t1]

    # -- output -------------------------------------------------------------

    def dump(self, path: str | Path) -> Path:
        """Write the trace as one event per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for event in self.events:
                fh.write(event.format() + "\n")
        return path

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{kind}={counts[kind]}" for kind in sorted(counts)]
        span = ""
        if self.events:
            span = (f" over [{self.events[0].time:.6f}, "
                    f"{self.events[-1].time:.6f}]s")
        return f"{len(self.events)} events ({', '.join(parts)}){span}"

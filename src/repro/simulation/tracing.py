"""Event tracing for DES debugging and post-hoc analysis.

A :class:`FrameTracer` hooks into switch forward paths and control
links, recording typed events (arrival, departure, drop, bcn, pause)
— the pcap stand-in for this simulator.

Storage and export are delegated to the unified observability layer
(:mod:`repro.obs`): every event lands in an
:class:`~repro.obs.Observability` handle as a structured
:class:`~repro.obs.TraceRecord` (and bumps the ``events.*`` counters),
so a tracer-collected run can be exported as the same schema-versioned
JSONL as any engine trace.  Pass your own handle via ``obs=`` to merge
tracer events into a wider collection; otherwise the tracer owns one.
:class:`TraceEvent` remains the lightweight per-event view this
module's query/dump API returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..obs import Observability, TraceRecord
from .frames import BCNMessage, EthernetFrame, PauseFrame
from .switch import CoreSwitch

__all__ = ["TraceEvent", "FrameTracer"]

#: Tracer view kind -> unified obs vocabulary.  The tracer's single
#: "pause" kind maps onto the excursion-start event.
_TO_OBS_KIND = {"pause": "pause_on"}
_FROM_OBS_KIND = {"pause_on": "pause"}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event (view over an obs :class:`TraceRecord`)."""

    time: float
    kind: str  #: "arrive" | "depart" | "drop" | "bcn" | "pause"
    node: str
    flow_id: int | None = None
    detail: str = ""

    def format(self) -> str:
        flow = f" flow={self.flow_id}" if self.flow_id is not None else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"{self.time:.9f} {self.kind:<7} {self.node}{flow}{detail}"


def _to_view(record: TraceRecord) -> TraceEvent:
    return TraceEvent(
        time=record.t,
        kind=_FROM_OBS_KIND.get(record.kind, record.kind),
        node=record.node or "",
        flow_id=record.flow,
        detail=record.detail,
    )


class FrameTracer:
    """Collects trace events from instrumented components.

    Parameters
    ----------
    max_events:
        Cap on stored events (later events are counted but dropped).
        Ignored when an external ``obs`` handle is supplied — the
        handle's own trace cap governs.
    obs:
        Observability handle to record into; the tracer creates a
        private one when omitted.
    """

    def __init__(self, max_events: int | None = None,
                 obs: Observability | None = None) -> None:
        if obs is None:
            obs = Observability(max_trace_events=max_events)
        self.obs = obs

    @property
    def events(self) -> list[TraceEvent]:
        return [_to_view(r) for r in self.obs.trace.records]

    def record(self, event: TraceEvent) -> None:
        self.obs.event(
            _TO_OBS_KIND.get(event.kind, event.kind), event.time,
            engine="packet.reference", node=event.node, flow=event.flow_id,
            detail=event.detail,
        )

    # -- instrumentation ----------------------------------------------------

    def attach_switch(self, switch: CoreSwitch, *, name: str | None = None) -> None:
        """Wrap a switch's data path to trace arrivals/departures/drops."""
        label = name if name is not None else switch.cpid
        original_receive = switch.receive
        original_forward = switch.forward

        def traced_receive(frame: EthernetFrame) -> None:
            drops_before = switch.queue.dropped_frames
            original_receive(frame)
            if switch.queue.dropped_frames > drops_before:
                self.record(TraceEvent(switch.sim.now, "drop", label,
                                       frame.flow_id,
                                       f"size={frame.size_bits}"))
            else:
                self.record(TraceEvent(switch.sim.now, "arrive", label,
                                       frame.flow_id,
                                       f"q={switch.queue_bits:.0f}"))

        def traced_forward(frame: EthernetFrame) -> None:
            self.record(TraceEvent(switch.sim.now, "depart", label,
                                   frame.flow_id))
            original_forward(frame)

        switch.receive = traced_receive  # type: ignore[method-assign]
        switch.forward = traced_forward

    def control_hook(self, node: str):
        """A pass-through callback wrapper for control links.

        Use as ``Link(sim, delay, tracer.control_hook("h0")(handler))``.
        """

        def wrap(handler):
            def traced(message):
                if isinstance(message, BCNMessage):
                    self.record(TraceEvent(message.sent_at, "bcn", node,
                                           message.da,
                                           f"fb={message.fb:+g}"))
                elif isinstance(message, PauseFrame):
                    self.record(TraceEvent(message.sent_at, "pause", node,
                                           None,
                                           f"dur={message.duration:g}"))
                handler(message)

            return traced

        return wrap

    # -- querying -----------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_flow(self, flow_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def between(self, t0: float, t1: float) -> list[TraceEvent]:
        return [e for e in self.events if t0 <= e.time < t1]

    # -- output -------------------------------------------------------------

    def dump(self, path: str | Path) -> Path:
        """Write the trace as one formatted event per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for event in self.events:
                fh.write(event.format() + "\n")
        return path

    def dump_jsonl(self, path: str | Path) -> Path:
        """Write the trace in the structured JSONL schema."""
        return self.obs.write_trace(path)

    def summary(self) -> str:
        events = self.events
        counts = self.counts()
        parts = [f"{kind}={counts[kind]}" for kind in sorted(counts)]
        span = ""
        if events:
            span = (f" over [{events[0].time:.6f}, "
                    f"{events[-1].time:.6f}]s")
        return f"{len(events)} events ({', '.join(parts)}){span}"

"""Multi-hop BCN simulation over arbitrary data-center topologies.

Generalises the dumbbell of :mod:`repro.simulation.network` to any
:mod:`networkx` fabric from :mod:`repro.topology`: every *directed*
switch-output port traversed by at least one flow gets its own FIFO,
service loop and BCN congestion point (a :class:`.switch.CoreSwitch`),
and frames hop port to port along each flow's (ECMP-selected) route.
BCN messages travel back to the originating source over control links
whose delay is proportional to the hop distance.

802.3x PAUSE is wired **hop-by-hop** by default (``hop_level_pause``):
a congested port pauses the *port feeding it*, so congestion rolls back
upstream with the head-of-line blocking the paper's Section I
criticises (the victim-flow experiment M1 measures it); pass
``hop_level_pause=False`` for the simpler source-directed PAUSE.

Large fabrics can run **sharded**: ``shards=`` partitions the topology
(:func:`repro.topology.partition_graph`), one event kernel per shard
advances in conservative lookahead windows, and ``workers=`` processes
host the shards (:mod:`repro.shard`).  Results are independent of the
worker count; a single shard reproduces the serial engine bitwise.

Simplification relative to a full switch implementation (documented
here per the reproduction rules): one rate regulator per source reacts
to BCN from *any* congestion point on its path (the draft instantiates
one per CPID).  This does not affect the single-bottleneck dynamics the
paper analyses and keeps multi-bottleneck runs conservative (sources
slow down at least as much as the draft requires).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial

import networkx as nx
import numpy as np

from ..topology.routing import ecmp_route, route_edges
from ..workloads.flows import FlowSpec
from .engine import CalendarSimulator, Simulator, make_simulator
from .frames import EthernetFrame
from .link import Link
from .network import PACKET_ENGINES
from .source import RateRegulator, TrafficSource
from .switch import CoreSwitch

__all__ = ["PortConfig", "MultiHopResult", "MultiHopNetwork", "QueueRecorder"]


@dataclass(frozen=True)
class PortConfig:
    """BCN configuration applied to every instantiated output port."""

    q0: float
    buffer_bits: float
    w: float = 2.0
    pm: float = 0.01
    gi: float = 4.0
    gd: float = 1.0 / 128.0
    ru: float = 8e6
    q_sc: float | None = None
    fb_bits: int | None = 6
    regulator_mode: str = "message"
    min_rate: float = 1e6


@dataclass
class MultiHopResult:
    """Outcome of a multi-hop run."""

    duration: float
    per_flow_delivered_bits: dict[int, float]
    per_flow_rate: dict[int, float]
    port_queues: dict[tuple[str, str], np.ndarray]
    port_queue_times: np.ndarray
    dropped_frames: int
    bcn_negative: int
    bcn_positive: int
    pauses: int
    finish_times: dict[int, float] = field(default_factory=dict)
    start_times: dict[int, float] = field(default_factory=dict)

    def flow_throughput(self, flow_id: int) -> float:
        """Delivered bits/s for one flow over the whole run."""
        return self.per_flow_delivered_bits.get(flow_id, 0.0) / self.duration

    def flow_completion_time(self, flow_id: int) -> float | None:
        """FCT of a finite flow (None if it did not finish in the run)."""
        finish = self.finish_times.get(flow_id)
        if finish is None:
            return None
        return finish - self.start_times.get(flow_id, 0.0)

    def completed_flows(self) -> list[int]:
        return sorted(self.finish_times)

    def hottest_port(self) -> tuple[str, str]:
        """The port with the largest peak queue."""
        return max(self.port_queues, key=lambda e: float(self.port_queues[e].max()))

    def jain_fairness(self, flow_ids: list[int] | None = None) -> float:
        ids = flow_ids if flow_ids is not None else sorted(self.per_flow_rate)
        r = np.array([self.per_flow_rate[i] for i in ids])
        if r.size == 0 or float(np.sum(r * r)) == 0.0:
            return 1.0
        return float(np.sum(r)) ** 2 / (r.size * float(np.sum(r * r)))


class QueueRecorder:
    """Per-port queue sampler writing into preallocated numpy storage.

    Replaces the per-sample ``list.append`` per port (and the final
    list -> array conversions) with one ``(n_ports, n_samples)`` float
    array grown geometrically, so long runs with many ports sample in
    O(ports) scalar stores and O(1) amortised allocations.
    """

    __slots__ = ("_sim", "_ports", "_times", "_samples", "_n")

    def __init__(self, sim, ports: dict[tuple[str, str], CoreSwitch],
                 expected_samples: int) -> None:
        self._sim = sim
        self._ports = list(ports.items())
        capacity = max(int(expected_samples), 4)
        self._times = np.empty(capacity, dtype=float)
        self._samples = np.empty((len(self._ports), capacity), dtype=float)
        self._n = 0

    def record(self) -> None:
        n = self._n
        if n == self._times.shape[0]:
            self._times = np.concatenate(
                [self._times, np.empty_like(self._times)]
            )
            self._samples = np.concatenate(
                [self._samples, np.empty_like(self._samples)], axis=1
            )
        self._times[n] = self._sim.now
        samples = self._samples
        for row, (_, port) in enumerate(self._ports):
            samples[row, n] = port.queue_bits
        self._n = n + 1

    def times(self) -> np.ndarray:
        """Sample timestamps (a copy trimmed to the recorded length)."""
        return self._times[: self._n].copy()

    def queues(self) -> dict[tuple[str, str], np.ndarray]:
        """Per-port sample rows, trimmed and copied."""
        return {
            edge: self._samples[row, : self._n].copy()
            for row, (edge, _) in enumerate(self._ports)
        }


class MultiHopNetwork:
    """Instantiate and run a BCN fabric for a workload.

    Parameters
    ----------
    graph:
        Topology with ``capacity`` edge attributes (bits/s), e.g. from
        :mod:`repro.topology.graphs`.
    flows:
        Workload flow specs; routes are filled by deterministic ECMP
        when a spec does not pin one.
    port_config:
        BCN parameters applied at every output port.
    propagation_delay:
        Per-hop one-way delay.
    engine:
        ``"reference"`` runs on the binary-heap event kernel;
        ``"batched"`` swaps in the calendar-queue kernel
        (:class:`~repro.simulation.engine.CalendarSimulator`) with
        slots sized to one frame service time at the fastest port;
        ``"compiled"`` uses the calendar queue with compiled slot scans
        (:func:`~repro.simulation.engine.make_simulator`), degrading to
        the plain calendar without a compiled backend.  Event ordering
        — and therefore every result — is identical across the three;
        frame-train batching itself currently applies to the
        single-bottleneck dumbbell only.
    shards:
        ``None`` (default) runs the serial single-kernel engine.  An
        integer or ``"auto"`` runs the conservative sharded engine of
        :mod:`repro.shard`: the graph is partitioned into that many
        regions, each with its own ``engine`` kernel, synchronized in
        windows of one cross-shard propagation delay.  Requires a
        positive ``propagation_delay``.
    workers:
        Worker processes hosting the shards (``None`` = all CPUs,
        capped at the shard count; ``1`` steps every shard inline in
        this process).  The result never depends on this value.
    partition:
        Optional pinned :class:`~repro.topology.Partition`; defaults to
        :func:`~repro.topology.partition_graph` over the graph.
    """

    def __init__(
        self,
        graph: nx.Graph,
        flows: list[FlowSpec],
        port_config: PortConfig,
        *,
        frame_bits: int = 1500 * 8,
        propagation_delay: float = 0.5e-6,
        queue_sample_interval: float | None = None,
        hop_level_pause: bool = True,
        engine: str = "reference",
        shards: int | str | None = None,
        workers: int | None = None,
        partition=None,
        obs=None,
    ) -> None:
        if not flows:
            raise ValueError("need at least one flow")
        if engine not in PACKET_ENGINES:
            raise ValueError(
                f"unknown packet engine {engine!r}; pick from {PACKET_ENGINES}"
            )
        self.graph = graph
        self.config = port_config
        self.frame_bits = frame_bits
        self.delay = propagation_delay
        self.engine = engine
        # Set before any port is created: _make_port attaches the handle.
        self.obs = obs if (obs is not None and obs.enabled) else None
        self._obs_engine = f"packet.{engine}"

        self.routes: dict[int, list[str]] = {}
        for spec in flows:
            route = (
                list(spec.route)
                if spec.route is not None
                else ecmp_route(graph, spec.src, spec.dst, spec.flow_id)
            )
            self.routes[spec.flow_id] = route

        # Directed switch-output edges in use, in first-traversal order
        # (= port instantiation order, serial and sharded alike).
        self._port_edges: list[tuple[str, str]] = []
        seen_edges: set[tuple[str, str]] = set()
        for spec in flows:
            for u, v in route_edges(self.routes[spec.flow_id]):
                if u == self.routes[spec.flow_id][0]:
                    continue  # host NIC: pacing models the first hop
                if (u, v) not in seen_edges:
                    seen_edges.add((u, v))
                    self._port_edges.append((u, v))
        self._port_edge_set = seen_edges
        self.flows = flows
        self._specs = {spec.flow_id: spec for spec in flows}
        #: (flow, node) -> hop index; O(1) forwarding instead of a
        #: per-frame route scan.
        self._hop_index = {
            fid: {node: i for i, node in enumerate(route)}
            for fid, route in self.routes.items()
        }
        self.hop_level_pause = hop_level_pause

        if queue_sample_interval is None:
            slowest_port = min(
                (graph.edges[e]["capacity"] for e in self._port_edges),
                default=1e9,
            )
            queue_sample_interval = 50 * frame_bits / slowest_port
        self._queue_dt = queue_sample_interval

        #: Declarative timed events ``(t, seq, kind, payload)`` injected
        #: by the scenario layer.  ``seq`` is a monotonic registration
        #: counter: ties at one timestamp fire in registration order on
        #: every engine (serial heap, calendar, and each shard kernel).
        self._timed_events: list[tuple[float, int, str, tuple]] = []
        self._event_seq = itertools.count()

        self._plan = None
        self._workers = workers
        if shards is not None:
            from ..shard import build_plan, resolve_shards

            n_shards = (
                partition.n_shards
                if (partition is not None and shards == "auto")
                else resolve_shards(shards, graph, workers)
            )
            self._plan = build_plan(
                graph, flows, port_config,
                n_shards=n_shards,
                frame_bits=frame_bits,
                delay=propagation_delay,
                hop_level_pause=hop_level_pause,
                engine=engine,
                queue_dt=self._queue_dt,
                partition=partition,
                routes=self.routes,
            )
            # The sharded engine builds ports/sources inside its shard
            # runtimes; the serial attributes stay empty.
            self.sim: Simulator | None = None
            self.ports: dict[tuple[str, str], CoreSwitch] = {}
            self.sources: dict[int, TrafficSource] = {}
            self._finish_times: dict[int, float] = {}
            self._delivered: dict[int, float] = {}
            return

        if engine == "batched" or engine == "compiled":
            fastest = max(
                (data["capacity"] for _, _, data in graph.edges(data=True)
                 if "capacity" in data),
                default=1e9,
            )
            slot = frame_bits / fastest
            if engine == "compiled":
                self.sim = make_simulator("compiled", slot_width=slot,
                                          n_slots=4096)
            else:
                self.sim = CalendarSimulator(slot_width=slot, n_slots=4096)
        else:
            self.sim = Simulator()

        # Instantiate one port per directed switch-output edge in use.
        self.ports = {}
        for u, v in self._port_edges:
            self.ports[(u, v)] = self._make_port(u, v)

        self._finish_times = {}
        self._pause_wired: set[tuple[tuple[str, str], tuple[str, str]]] = set()
        #: per-hop forward links, built once per edge instead of one
        #: throwaway Link allocation per forwarded frame
        self._fwd_links: dict[tuple[str, str], Link] = {}
        self.sources = {}
        self._delivered = {spec.flow_id: 0.0 for spec in flows}
        for spec in flows:
            self.sources[spec.flow_id] = self._make_source(spec)

        self._recorder: QueueRecorder | None = None

    @property
    def sharded(self) -> bool:
        """Whether this network runs on the sharded engine."""
        return self._plan is not None

    # -- scenario hooks ----------------------------------------------------

    def _register_event(self, t: float, kind: str, payload: tuple) -> None:
        if t < 0:
            raise ValueError("event time cannot be negative")
        self._timed_events.append((t, next(self._event_seq), kind, payload))

    def schedule_capacity(
        self, t: float, port: tuple[str, str], capacity: float
    ) -> None:
        """At time ``t`` change one port's service rate (C(t) events)."""
        if port not in self._port_edge_set:
            raise ValueError(f"no instantiated port {port!r}")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._register_event(t, "capacity", (port, capacity))

    def schedule_outage(
        self, t: float, outage_duration: float,
        port: tuple[str, str] | None = None,
    ) -> None:
        """Black out one port (or every port) for ``outage_duration``.

        Store-and-forward: the in-flight frame on each affected port
        completes; no new service starts until the outage ends.
        """
        if outage_duration <= 0:
            raise ValueError("outage_duration must be positive")
        if port is not None and port not in self._port_edge_set:
            raise ValueError(f"no instantiated port {port!r}")
        self._register_event(t, "outage", (outage_duration, port))

    def schedule_departure(self, t: float, flow_id: int) -> None:
        """At time ``t`` mute flow ``flow_id`` permanently."""
        if flow_id not in self._specs:
            raise ValueError(f"unknown flow {flow_id!r}")
        self._register_event(t, "departure", (flow_id,))

    def _apply_event(self, kind: str, payload: tuple) -> None:
        if kind == "capacity":
            self.ports[payload[0]].set_capacity(payload[1])
        elif kind == "outage":
            outage_duration, port = payload
            until = self.sim.now + outage_duration
            edges = [port] if port is not None else list(self.ports)
            for edge in edges:
                self.ports[edge].suspend_service(until)
        elif kind == "departure":
            self.sources[payload[0]].muted = True
        else:  # pragma: no cover - _register_event controls the kinds
            raise ValueError(f"unknown timed event kind {kind!r}")

    # -- construction -----------------------------------------------------

    def _make_port(self, u: str, v: str) -> CoreSwitch:
        capacity = self.graph.edges[u, v]["capacity"]
        cfg = self.config
        port = CoreSwitch(
            self.sim,
            cpid=f"{u}->{v}",
            capacity=capacity,
            q0=cfg.q0,
            buffer_bits=cfg.buffer_bits,
            w=cfg.w,
            pm=cfg.pm,
            q_sc=cfg.q_sc,
            fb_bits=cfg.fb_bits,
        )
        port.forward = lambda frame, _u=u, _v=v: self._forward(frame, _v)
        port.attach_obs(self.obs, self._obs_engine)
        return port

    def _make_source(self, spec: FlowSpec) -> TrafficSource:
        cfg = self.config
        route = self.routes[spec.flow_id]
        regulator = RateRegulator(
            gi=cfg.gi,
            gd=cfg.gd,
            ru=cfg.ru,
            initial_rate=spec.demand,
            min_rate=cfg.min_rate,
            line_rate=spec.demand,
            mode=cfg.regulator_mode,
        )
        entry = self._entry_port(route)
        uplink = Link(self.sim, self.delay, entry)
        source = TrafficSource(
            self.sim,
            address=spec.flow_id,
            regulator=regulator,
            send=uplink.transmit,
            frame_bits=self.frame_bits,
            dst=spec.dst,
            total_bits=spec.size_bits,
        )
        # Register the backward control path at every port on the route.
        port_edges = [e for e in route_edges(route) if e in self.ports]
        for i, edge in enumerate(route_edges(route)):
            if edge in self.ports:
                back = Link(
                    self.sim, self.delay * (i + 1), source.receive_control
                )
                self.ports[edge].register_bcn_link(spec.flow_id, back)
                if not self.hop_level_pause:
                    self.ports[edge].register_pause_link(back)
        if self.hop_level_pause and port_edges:
            # 802.3x is hop-by-hop: a congested port pauses the *port*
            # feeding it (head-of-line blocking, congestion rollback);
            # the first in-fabric port pauses the source's NIC.
            first = port_edges[0]
            key = (first, ("src", str(spec.flow_id)))
            if key not in self._pause_wired:
                self._pause_wired.add(key)
                self.ports[first].register_pause_link(
                    Link(self.sim, self.delay, source.receive_control)
                )
            for upstream, downstream in zip(port_edges, port_edges[1:]):
                key = (downstream, upstream)
                if key in self._pause_wired:
                    continue
                self._pause_wired.add(key)
                self.ports[downstream].register_pause_link(
                    Link(self.sim, self.delay,
                         self.ports[upstream].receive_pause)
                )
        return source

    def _entry_port(self, route: list[str]):
        """Delivery callback for a flow's first in-fabric hop."""
        edges = route_edges(route)
        if len(edges) >= 2:
            first_fabric_edge = edges[1]
            port = self.ports[first_fabric_edge]
            return port.receive
        # Direct host-to-host (DCell level links): deliver straight away.
        return self._sink_for(route[-1])

    def _record_delivery(self, flow_id: int, bits: float) -> None:
        self._delivered[flow_id] += bits
        spec = self._specs[flow_id]
        if (spec.size_bits is not None
                and flow_id not in self._finish_times
                and self._delivered[flow_id] >= spec.size_bits):
            self._finish_times[flow_id] = self.sim.now

    def _forward(self, frame: EthernetFrame, at_node: str) -> None:
        route = self.routes[frame.flow_id]
        idx = self._hop_index[frame.flow_id][at_node]
        if idx == len(route) - 1:
            self._record_delivery(frame.flow_id, frame.size_bits)
            return
        next_edge = (at_node, route[idx + 1])
        link = self._fwd_links.get(next_edge)
        if link is None:
            link = Link(self.sim, self.delay, self.ports[next_edge].receive)
            self._fwd_links[next_edge] = link
        link.transmit(frame)

    def _sink_for(self, host: str):
        def deliver(frame: EthernetFrame) -> None:
            self._record_delivery(frame.flow_id, frame.size_bits)

        return deliver

    # -- driving -----------------------------------------------------------

    def run(self, duration: float) -> MultiHopResult:
        """Run the fabric for ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if self._plan is not None:
            from ..shard import run_sharded

            return run_sharded(
                self._plan, duration,
                workers=self._workers,
                timed_events=self._timed_events,
                obs=self.obs,
            )
        import time as _time
        wall_start = _time.monotonic() if self.obs is not None else 0.0  # repro-lint: disable=wall-clock -- obs run-span wall-time
        for t_event, _, kind, payload in sorted(
            self._timed_events, key=lambda ev: ev[:2]
        ):
            self.sim.schedule_at(t_event, partial(self._apply_event, kind,
                                                  payload))
        for spec in self.flows:
            source = self.sources[spec.flow_id]
            self.sim.schedule_at(spec.start_time, source.start)
        recorder = QueueRecorder(
            self.sim, self.ports, int(duration / self._queue_dt) + 3
        )
        self._recorder = recorder
        recorder.record()
        self.sim.schedule_every(self._queue_dt, recorder.record,
                                until=duration)
        self.sim.run(until=duration)
        recorder.record()
        port_queues = recorder.queues()

        if self.obs is not None:
            from ..obs import emit_sign_switches
            self.obs.add_span(f"{self._obs_engine}.multihop.run",
                              _time.monotonic() - wall_start)  # repro-lint: disable=wall-clock -- obs run-span wall-time
            for edge, port in self.ports.items():
                hist = port.sigma_history
                emit_sign_switches(self.obs, [h[0] for h in hist],
                                   [h[1] for h in hist],
                                   engine=self._obs_engine, node=port.cpid)
                self.obs.observe_queue(
                    self._obs_engine, port_queues[edge],
                    self.config.buffer_bits, self.config.q0)

        return MultiHopResult(
            duration=duration,
            per_flow_delivered_bits=dict(self._delivered),
            per_flow_rate={fid: src.rate for fid, src in self.sources.items()},
            port_queues=port_queues,
            port_queue_times=recorder.times(),
            dropped_frames=sum(
                p.queue.dropped_frames for p in self.ports.values()
            ),
            bcn_negative=sum(p.stats.bcn_negative for p in self.ports.values()),
            bcn_positive=sum(p.stats.bcn_positive for p in self.ports.values()),
            pauses=sum(p.stats.pauses_sent for p in self.ports.values()),
            finish_times=dict(self._finish_times),
            start_times={s.flow_id: s.start_time for s in self.flows},
        )

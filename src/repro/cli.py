"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``
    Assess one BCN configuration: case, strong stability, Theorem 1
    buffer requirement, transient profile, and optionally the phase
    trajectory as ASCII art.
``design``
    Solve Theorem 1 for the free quantities: max flows, max Gi, min Gd,
    max q0 for the given buffer.
``simulate``
    Run the packet-level dumbbell and report utilisation, queue
    behaviour, drops and fairness.
``experiments``
    Run the paper-reproduction experiments (same as
    ``python -m repro.experiments``).
``fabric``
    Run a fabric-scale multi-hop workload (fat-tree or DCell,
    permutation traffic) on the serial or sharded engine
    (``--shards``/``--workers``, :mod:`repro.shard`) and report
    throughput, queueing and wall time.
``scenario``
    List the named heavy-traffic scenario presets, or run one (incast,
    churn, outages, time-varying capacity) on either packet engine —
    single run or an N-seed sweep through the parallel runner.
``trace``
    Run one scenario on any of the engines (packet reference / batched /
    compiled, fluid reference / batch / compiled) with observability on
    and export the structured JSONL event trace (region switches, BCN
    messages, PAUSE on/off, drops, buffer pinning, convergence).
``profile``
    Same run, reporting the span profile and metric registry instead.
``lint``
    Run the repo-specific static analysis suite (RNG discipline,
    wall-clock bans, kernel-tier parity, obs vocabulary, engine-seam
    totality) over ``src/repro`` or the given paths.
``serve``
    Run the asyncio job server (:mod:`repro.serve`): accepts
    experiment/scenario/sweep jobs over newline-delimited JSON,
    dedups against the shared result cache, streams progress, and
    drains gracefully on SIGTERM.
``submit``
    Submit one job to a running server; waits for (or watches) it and
    prints the result envelope as JSON.

Examples
--------
::

    python -m repro analyze --capacity 10e9 --flows 50 --q0 2.5e6 \\
        --buffer 20e6 --plot
    python -m repro design --capacity 10e9 --flows 50 --q0 2.5e6 --buffer 16e6
    python -m repro simulate --capacity 1e9 --flows 10 --q0 1e6 \\
        --buffer 8e6 --duration 0.05
"""

from __future__ import annotations

import argparse
import sys

from .core.design import design_report, max_flows, max_gi, max_q0, min_gd
from .core.parameters import BCNParams
from .core.phase_plane import PhasePlaneAnalyzer
from .core.stability import required_buffer, strong_stability_report
from .core.transient import transient_report
from .simulation.network import BCNNetworkSimulator
from .viz.ascii import line_plot, phase_plot
from .viz.series import format_table

__all__ = ["main"]


def _add_param_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--capacity", type=float, required=True,
                        help="bottleneck capacity C in bits/s")
    parser.add_argument("--flows", type=int, required=True,
                        help="number of homogeneous flows N")
    parser.add_argument("--q0", type=float, required=True,
                        help="reference queue length in bits")
    parser.add_argument("--buffer", type=float, required=True,
                        help="buffer size B in bits")
    parser.add_argument("--w", type=float, default=2.0)
    parser.add_argument("--pm", type=float, default=0.01)
    parser.add_argument("--gi", type=float, default=4.0)
    parser.add_argument("--gd", type=float, default=1.0 / 128.0)
    parser.add_argument("--ru", type=float, default=8e6)


def _params_from(args: argparse.Namespace) -> BCNParams:
    return BCNParams(
        capacity=args.capacity,
        n_flows=args.flows,
        q0=args.q0,
        buffer_size=args.buffer,
        w=args.w,
        pm=args.pm,
        gi=args.gi,
        gd=args.gd,
        ru=args.ru,
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    params = _params_from(args)
    report = strong_stability_report(params)
    print(f"case: {report.case.value} (Proposition {report.proposition})")
    print(f"strongly stable: {report.strongly_stable}")
    print(f"Theorem 1 satisfied: {report.theorem1_satisfied}")
    print(f"required buffer: {report.theorem1_buffer:.6g} bits "
          f"(configured {params.buffer_size:.6g})")
    print(f"transient queue peak: {report.queue_peak:.6g} bits")
    print(f"transient: {transient_report(params).summary()}")
    if args.plot:
        trajectory = PhasePlaneAnalyzer(params).compose(max_switches=12)
        samples = trajectory.sample(150)
        print(phase_plot(samples[:, 1], samples[:, 2],
                         switching_k=params.normalized().k,
                         title="phase plane (x = q - q0, y = N r - C)"))
        t, q, _ = trajectory.queue_time_series(150)
        print(line_plot(t, q, reference=params.q0, title="queue q(t)"))
    return 0 if report.strongly_stable else 1


def _cmd_design(args: argparse.Namespace) -> int:
    params = _params_from(args)
    check = design_report(params)
    print(check.render())
    rows = [
        ["required buffer (bits)", required_buffer(params)],
        ["max flows at this buffer", max_flows(params)],
        ["max Gi", max_gi(params)],
        ["min Gd", min_gd(params)],
        ["max q0 (bits)", max_q0(params)],
    ]
    print(format_table(["design quantity", "value"], rows))
    return 0 if check.admitted else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    params = _params_from(args)
    net = BCNNetworkSimulator(params, regulator_mode=args.mode)
    result = net.run(args.duration)
    settle = args.duration / 2
    rows = [
        ["utilization", result.utilization()],
        ["queue peak (bits)", result.queue_peak()],
        ["queue mean (settled)", result.queue_mean(settle=settle)],
        ["queue std (settled)", result.queue_std(settle=settle)],
        ["drops", result.dropped_frames],
        ["negative BCN", result.bcn_negative],
        ["positive BCN", result.bcn_positive],
        ["PAUSE frames", result.pauses],
        ["Jain fairness", result.jain_fairness()],
    ]
    print(format_table(["metric", "value"], rows))
    if args.plot:
        print(line_plot(result.t, result.queue, reference=params.q0,
                        title="packet-level queue q(t)"))
    return 0


#: CLI engine names -> (family, engine argument used by the code).
OBS_ENGINES = {
    "packet-reference": ("packet", "reference"),
    "packet-batched": ("packet", "batched"),
    "packet-compiled": ("packet", "compiled"),
    "fluid-reference": ("fluid", "reference"),
    "fluid-batch": ("fluid", "batch"),
    "fluid-compiled": ("fluid", "compiled"),
}


def _resolve_packet_engine(engine: str) -> str:
    """Downgrade ``compiled`` to ``batched`` when nothing can compile.

    The compiled engine is numerically identical to the batched engine
    on every backend tier (the numpy tier literally delegates), so the
    fallback only changes speed — but the user asked for compiled, so
    say what they are actually getting and why.
    """
    if engine == "compiled":
        from .kernels import get_backend

        if not get_backend().compiled:
            print(
                "warning: no compiled kernel backend is available "
                "(numba is not installed and no C compiler was found); "
                "falling back to the batched engine",
                file=sys.stderr,
            )
            return "batched"
    return engine


def _run_observed(args: argparse.Namespace):
    """Run the scenario selected by ``args`` under an obs handle."""
    from .obs import Observability

    params = _params_from(args)
    family, engine = OBS_ENGINES[args.engine]
    obs = Observability()
    if family == "fluid":
        from .fluid.batch import simulate_fluid_batch
        from .fluid.integrate import simulate_fluid

        p = params.normalized()
        if engine == "reference":
            simulate_fluid(p, t_max=args.duration, mode=args.fluid_mode,
                           obs=obs)
        else:
            fluid_method = "compiled" if engine == "compiled" else "numpy"
            simulate_fluid_batch(p, -p.q0, 0.0, t_max=args.duration,
                                 mode=args.fluid_mode, obs=obs,
                                 fluid_method=fluid_method)
    else:
        engine = _resolve_packet_engine(engine)
        net = BCNNetworkSimulator(params, regulator_mode=args.mode,
                                  engine=engine, obs=obs)
        net.run(args.duration)
    return obs


def _cmd_trace(args: argparse.Namespace) -> int:
    obs = _run_observed(args)
    path = obs.write_trace(
        args.out,
        meta={"engine": args.engine, "duration": args.duration},
    )
    counts = obs.event_counts()
    print(format_table(
        ["event kind", "count"],
        [[kind, counts[kind]] for kind in sorted(counts)],
    ))
    print(obs.summary())
    print(f"trace written to {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    obs = _run_observed(args)
    print(obs.profiler.summary_table())
    print()
    print(obs.metrics.summary_table())
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .scenarios import PRESETS, get_preset, run_scenario
    from .scenarios.sweep import run_scenario_sweep

    args.engine = _resolve_packet_engine(args.engine)

    if args.preset is None or args.list:
        rows = []
        for name in sorted(PRESETS):
            scenario = get_preset(name)
            doc = (PRESETS[name].__doc__ or "").strip().splitlines()[0]
            rows.append([name, len(scenario.events),
                         f"{1e3 * scenario.duration:g} ms", doc])
        print(format_table(["preset", "events", "horizon", "stress"], rows))
        return 0

    if args.seeds is not None:
        from .runner.instrumentation import RunnerStats

        stats = RunnerStats()
        sweep = run_scenario_sweep(
            args.preset,
            seeds=range(args.seeds),
            engine=args.engine,
            workers=args.workers,
            stats=stats,
        )
        rows = [
            [rec["preset"], seed, rec["utilization"], rec["queue_peak"],
             rec["dropped_frames"], rec["pauses"],
             f"{rec['n_finished']}/{rec['n_dynamic_flows']}",
             "-" if rec["fct_mean"] is None else f"{1e3 * rec['fct_mean']:.3f}"]
            for seed, rec in zip(range(args.seeds), sweep.records)
        ]
        print(format_table(
            ["preset", "seed", "utilization", "queue peak", "drops",
             "pauses", "finished", "FCT mean (ms)"], rows))
        print(f"\n{args.seeds} seeds on the {args.engine} engine "
              f"in {stats.elapsed:.2f} s "
              f"({'pooled' if stats.workers > 1 else 'serial'}, "
              f"workers={stats.workers})")
        return 0

    obs = None
    if args.obs:
        from .obs import Observability

        obs = Observability()
    scenario = get_preset(args.preset, args.seed)
    result = run_scenario(scenario, engine=args.engine, obs=obs)
    sim = result.sim
    fcts = [f.fct for f in result.flows if f.fct is not None]
    rows = [
        ["engine", args.engine],
        ["events scheduled", len(scenario.events)],
        ["capacity transitions", scenario.n_capacity_transitions()],
        ["utilization (vs ∫C dt)", result.utilization()],
        ["queue peak (bits)", sim.queue_peak()],
        ["queue mean (bits)", sim.queue_mean()],
        ["drops", sim.dropped_frames],
        ["PAUSE frames", sim.pauses],
        ["BCN messages", sim.bcn_negative + sim.bcn_positive],
        ["dynamic flows finished", f"{len(fcts)}/{len(result.flows)}"],
        ["conservation error (bits)", result.conservation_error()],
    ]
    if fcts:
        import numpy as np

        rows.append(["FCT mean (ms)", 1e3 * float(np.mean(fcts))])
        rows.append(["FCT p99 (ms)", 1e3 * float(np.percentile(fcts, 99))])
    print(format_table(["metric", "value"], rows))
    if obs is not None:
        print()
        print(obs.summary())
    if args.plot:
        print(line_plot(sim.t, sim.queue, reference=scenario.params.q0,
                        title=f"{args.preset} queue q(t) [{args.engine}]"))
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    import time as _time

    from .simulation.multihop import MultiHopNetwork, PortConfig
    from .topology import dcell, fat_tree
    from .topology import hosts as fabric_hosts
    from .workloads.generators import permutation

    engine = _resolve_packet_engine(args.engine)
    if args.topology == "fat-tree":
        graph = fat_tree(args.k, capacity=args.capacity)
    else:
        graph = dcell(args.k, args.level, capacity=args.capacity)
    hs = fabric_hosts(graph)
    flows = permutation(hs, demand=args.demand, rounds=args.rounds)
    frame_bits = 1500 * 8
    config = PortConfig(q0=args.q0_frames * frame_bits,
                        buffer_bits=args.buffer_frames * frame_bits)

    shards: int | str | None = None
    if args.shards is not None:
        shards = "auto" if args.shards == "auto" else int(args.shards)

    obs = None
    if args.obs:
        from .obs import Observability

        obs = Observability()
    net = MultiHopNetwork(
        graph, flows, config,
        propagation_delay=args.delay,
        engine=engine,
        shards=shards,
        workers=args.workers,
        obs=obs,
    )
    mode = "serial"
    if net.sharded:
        mode = (f"{net._plan.n_shards} shards, "
                f"lookahead {1e6 * net._plan.lookahead:g} us")
    wall_start = _time.perf_counter()
    result = net.run(args.duration)
    wall = _time.perf_counter() - wall_start

    delivered = sum(result.per_flow_delivered_bits.values())
    hottest = result.hottest_port()
    rows = [
        ["topology", f"{args.topology} ({len(hs)} hosts)"],
        ["flows", len(flows)],
        ["ports", len(net._port_edges)],
        ["engine", engine],
        ["mode", mode],
        ["delivered (Gbit)", delivered / 1e9],
        ["aggregate throughput (Gbit/s)", delivered / args.duration / 1e9],
        ["drops", result.dropped_frames],
        ["negative BCN", result.bcn_negative],
        ["positive BCN", result.bcn_positive],
        ["PAUSE frames", result.pauses],
        ["hottest port", f"{hottest[0]}->{hottest[1]} "
                         f"({float(result.port_queues[hottest].max()):.3g} bits)"],
        ["wall time (s)", wall],
    ]
    print(format_table(["metric", "value"], rows))
    if obs is not None:
        # Shard metrics/spans merge commutatively into this handle;
        # per-event traces stay in the workers, so show the registries.
        print()
        print(obs.profiler.summary_table())
        print()
        print(obs.metrics.summary_table())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.__main__ import main as experiments_main

    argv = list(args.ids)
    if args.csv:
        argv += ["--csv", args.csv]
    if args.parallel:
        argv += ["--parallel"]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv += ["--no-cache"]
    return experiments_main(argv)


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .lint import (
        LintError, check_names, render_json, render_text, run_lint,
        worst_severity,
    )

    if args.list_checks:
        for name in check_names():
            print(name)
        return 0
    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    select = None
    if args.select:
        select = [name for chunk in args.select
                  for name in chunk.split(",") if name]
    try:
        findings = run_lint(paths, select=select)
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return worst_severity(findings)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .serve.server import JobServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        spool_dir=args.spool_dir,
        workers=args.workers or 0,
        max_concurrent=args.max_concurrent,
        max_retries=args.max_retries,
    )

    async def _amain() -> int:
        server = JobServer(config)
        await server.start()
        server.install_signal_handlers()
        # One parseable line so wrappers (and the e2e test) learn the
        # bound port when --port 0 picked an ephemeral one.
        print(json.dumps({"listening": {"host": config.host,
                                        "port": server.port}}), flush=True)
        await server.run()
        counters = server.obs.metrics.snapshot().get("counters", {})
        done = {k: v for k, v in sorted(counters.items())
                if k.startswith("serve.")}
        print(f"drained: {json.dumps(done)}", file=sys.stderr)
        return 0

    return asyncio.run(_amain())


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .serve.client import ServeClient, ServeError

    try:
        payload = json.loads(args.job)
    except ValueError as exc:
        print(f"repro submit: job is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        with ServeClient(args.host, args.port, timeout=args.timeout) as client:
            if args.watch:
                def on_event(event: dict) -> None:
                    print(json.dumps(event.get("record", event)), flush=True)

                end = client.submit_and_watch(payload, on_event)
                if end.get("state") != "done":
                    print(f"repro submit: job ended {end.get('state')}"
                          + (f": {end['failure']}" if end.get("failure")
                             else ""),
                          file=sys.stderr)
                    return 1
                print(json.dumps(client.result(end["key"]), sort_keys=True))
                return 0
            if args.no_wait:
                response = client.submit(payload)
                print(json.dumps(
                    {k: response[k] for k in ("key", "state", "dedup")
                     if k in response}, sort_keys=True))
                return 0
            response = client.submit(payload, wait=True)
            if response.get("state") != "done":
                print(f"repro submit: job ended {response.get('state')}"
                      + (f": {response['failure']}"
                         if response.get("failure") else ""),
                      file=sys.stderr)
                return 1
            print(json.dumps(response["result"], sort_keys=True))
            return 0
    except (ServeError, OSError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.reporting import run_reproduction_report

    report = run_reproduction_report(
        args.ids or None, csv_dir=args.csv
    )
    path = report.write(args.out)
    print(format_table(["id", "verdict", "wall", "title"],
                       report.summary_rows()))
    print(f"\nreport written to {path}")
    return 0 if report.all_passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Phase-plane analysis of BCN congestion control "
                    "(ICDCS 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="assess one configuration")
    _add_param_args(p_analyze)
    p_analyze.add_argument("--plot", action="store_true")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_design = sub.add_parser("design", help="invert Theorem 1")
    _add_param_args(p_design)
    p_design.set_defaults(func=_cmd_design)

    p_sim = sub.add_parser("simulate", help="packet-level dumbbell run")
    _add_param_args(p_sim)
    p_sim.add_argument("--duration", type=float, default=0.05)
    p_sim.add_argument("--mode", default="message",
                       choices=["message", "fluid-euler", "fluid-exact"])
    p_sim.add_argument("--plot", action="store_true")
    p_sim.set_defaults(func=_cmd_simulate)

    def _add_obs_args(p: argparse.ArgumentParser) -> None:
        _add_param_args(p)
        p.add_argument("--duration", type=float, default=0.05,
                       help="simulated horizon in seconds")
        p.add_argument("--engine", default="packet-reference",
                       choices=sorted(OBS_ENGINES),
                       help="which of the four engines to run")
        p.add_argument("--mode", default="message",
                       choices=["message", "fluid-euler", "fluid-exact"],
                       help="regulator mode (packet engines)")
        p.add_argument("--fluid-mode", default="nonlinear",
                       choices=["linearized", "nonlinear", "physical"],
                       help="fluid fidelity mode (fluid engines)")

    p_trace = sub.add_parser(
        "trace", help="run one scenario and export the JSONL event trace")
    _add_obs_args(p_trace)
    p_trace.add_argument("--out", default="trace.jsonl",
                         help="output JSONL path")
    p_trace.set_defaults(func=_cmd_trace)

    p_prof = sub.add_parser(
        "profile", help="run one scenario and report spans + metrics")
    _add_obs_args(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    p_scen = sub.add_parser(
        "scenario",
        help="list or run the heavy-traffic scenario presets")
    p_scen.add_argument("preset", nargs="?", default=None,
                        help="preset name (omit to list the registry)")
    p_scen.add_argument("--list", action="store_true",
                        help="list the preset registry and exit")
    p_scen.add_argument("--engine", default="reference",
                        choices=["reference", "batched", "compiled"],
                        help="packet engine to run the scenario on")
    p_scen.add_argument("--seed", type=int, default=0,
                        help="seed for a single run")
    p_scen.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="run an N-seed sweep (seeds 0..N-1) instead")
    p_scen.add_argument("--workers", type=int, default=None,
                        help="pool size for --seeds sweeps")
    p_scen.add_argument("--obs", action="store_true",
                        help="run under observability and print its summary")
    p_scen.add_argument("--plot", action="store_true",
                        help="ASCII-plot the queue trajectory")
    p_scen.set_defaults(func=_cmd_scenario)

    p_fabric = sub.add_parser(
        "fabric",
        help="run a fabric-scale workload on the serial or sharded engine")
    p_fabric.add_argument("--topology", default="fat-tree",
                          choices=["fat-tree", "dcell"])
    p_fabric.add_argument("--k", type=int, default=4,
                          help="fat-tree arity / DCell cell size")
    p_fabric.add_argument("--level", type=int, default=1,
                          help="DCell recursion level")
    p_fabric.add_argument("--capacity", type=float, default=10e9,
                          help="link capacity in bits/s")
    p_fabric.add_argument("--rounds", type=int, default=2,
                          help="permutation rounds (flows per host)")
    p_fabric.add_argument("--demand", type=float, default=1e9,
                          help="per-flow demand in bits/s")
    p_fabric.add_argument("--duration", type=float, default=2e-3,
                          help="simulated horizon in seconds")
    p_fabric.add_argument("--delay", type=float, default=1e-6,
                          help="per-hop propagation delay in seconds "
                               "(sets the sharded lookahead window)")
    p_fabric.add_argument("--q0-frames", type=float, default=8,
                          help="per-port BCN reference queue, in frames")
    p_fabric.add_argument("--buffer-frames", type=float, default=150,
                          help="per-port buffer, in frames")
    p_fabric.add_argument("--engine", default="reference",
                          choices=["reference", "batched", "compiled"],
                          help="event kernel (per shard when sharded)")
    p_fabric.add_argument("--shards", default=None, metavar="N|auto",
                          help="partition into N shards ('auto' = one "
                               "per worker); omit for the serial engine")
    p_fabric.add_argument("--workers", type=int, default=None,
                          help="worker processes hosting the shards")
    p_fabric.add_argument("--obs", action="store_true",
                          help="run under observability and print its summary")
    p_fabric.set_defaults(func=_cmd_fabric)

    p_exp = sub.add_parser("experiments", help="run paper reproductions")
    p_exp.add_argument("ids", nargs="*")
    p_exp.add_argument("--csv")
    p_exp.add_argument("--parallel", action="store_true",
                       help="run via the process-pool runner")
    p_exp.add_argument("--workers", type=int, default=None,
                       help="pool size for --parallel (default: cpu count)")
    p_exp.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed result cache directory")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="ignore --cache-dir (cache disabled)")
    p_exp.set_defaults(func=_cmd_experiments)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo-specific static analysis suite")
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint "
                             "(default: src/repro)")
    p_lint.add_argument("--format", default="text",
                        choices=["text", "json"],
                        help="finding output format")
    p_lint.add_argument("--select", action="append", metavar="CHECKS",
                        help="comma-separated check names to run "
                             "(default: all; see --list-checks)")
    p_lint.add_argument("--list-checks", action="store_true",
                        help="list registered check names and exit")
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve", help="run the asyncio job server over the runner")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listening port (0 = ephemeral; the bound "
                              "port is printed as a JSON line on stdout)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="shared content-addressed result cache "
                              "(enables warm starts and cross-server dedup)")
    p_serve.add_argument("--spool-dir", metavar="DIR", default=None,
                         help="progress streams + drain requeue file "
                              "(default: CACHE_DIR/spool, else a tempdir)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="process-pool size per job (default: inline)")
    p_serve.add_argument("--max-concurrent", type=int, default=2,
                         help="jobs executing at once")
    p_serve.add_argument("--max-retries", type=int, default=1,
                         help="extra attempts after a worker fault")
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running server")
    p_submit.add_argument("job", metavar="JOB_JSON",
                          help="job payload, e.g. '{\"kind\": \"scenario\", "
                               "\"preset\": \"baseline-bcn\", \"seed\": 1}'")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, required=True)
    p_submit.add_argument("--timeout", type=float, default=300.0,
                          help="socket timeout in seconds")
    p_submit.add_argument("--watch", action="store_true",
                          help="stream progress events while waiting")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="submit and print the job key immediately")
    p_submit.set_defaults(func=_cmd_submit)

    p_report = sub.add_parser(
        "report", help="run all experiments into a markdown report")
    p_report.add_argument("--out", default="REPORT.md")
    p_report.add_argument("--csv", metavar="DIR")
    p_report.add_argument("ids", nargs="*")
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

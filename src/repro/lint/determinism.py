"""Determinism checks: RNG discipline and wall-clock bans.

``rng``
    Every engine, workload and scenario must draw randomness from an
    explicitly *seeded* generator object (``random.Random(seed)`` or
    ``numpy.random.default_rng(seed)``) that arrives as an argument or
    is derived from a seed.  Module-level RNG state (``np.random.rand``,
    ``random.random``, ``np.random.seed``) and unseeded constructors
    are banned in ``src/``: they make ensemble sweeps irreproducible
    and poison cross-engine bitwise conformance.

``wall-clock``
    Reading the wall clock (``time.time``, ``datetime.now``) is banned
    everywhere — simulated time is the only time.  Monotonic timers
    (``perf_counter``/``monotonic``) are additionally banned inside the
    hot kernel/engine packages, where the only legitimate use is timing
    *instrumentation* that must carry an explicit suppression with its
    reason.  Iterating a freshly-built ``set`` is flagged in the same
    packages: set iteration order is a hash-seed artefact, so any
    behaviour derived from it is nondeterministic across processes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, LintProject, SourceFile, register

__all__ = ["check_rng", "check_wall_clock"]

#: numpy.random attributes that construct explicit generator objects —
#: everything else on the module is global-state or a draw from it.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: stdlib ``random`` attributes allowed: only the seedable instance
#: class.  ``SystemRandom`` is OS entropy, i.e. never reproducible.
_PY_RANDOM_ALLOWED = frozenset({"Random"})

#: Wall-clock reads banned in every linted file.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Monotonic timers: fine for instrumentation layers (runner, obs,
#: analysis), banned by default in the hot simulation/kernel packages.
_TIMERS = frozenset({
    "time.perf_counter", "time.perf_counter_ns", "time.monotonic",
    "time.monotonic_ns", "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
})

#: Packages whose code runs inside the deterministic simulation core.
_HOT_PACKAGES = (
    "repro.core", "repro.fluid", "repro.kernels", "repro.simulation",
    "repro.scenarios",
)


def import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import paths they are bound to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    Later bindings win, which matches execution order closely enough
    for lint purposes.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                table[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def resolve(node: ast.expr, table: dict[str, str]) -> str | None:
    """Resolve a ``Name``/``Attribute`` chain to its dotted import path."""
    attrs: list[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = table.get(node.id)
    if base is None:
        return None
    return ".".join([base, *reversed(attrs)])


def _rng_file(file: SourceFile) -> Iterator[Finding]:
    table = import_table(file.tree)
    call_funcs = {
        id(call.func): call
        for call in ast.walk(file.tree)
        if isinstance(call, ast.Call)
    }
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ImportFrom) and not node.level:
            if node.module in ("random", "numpy.random"):
                allowed = (_PY_RANDOM_ALLOWED if node.module == "random"
                           else _NP_RANDOM_ALLOWED)
                for alias in node.names:
                    if alias.name not in allowed:
                        yield Finding(
                            check="rng", path=file.rel, line=node.lineno,
                            col=node.col_offset + 1,
                            message=(
                                f"'from {node.module} import {alias.name}' "
                                "pulls module-level RNG state; construct a "
                                "seeded generator instead"),
                        )
            continue
        if not isinstance(node, ast.Attribute):
            continue
        dotted = resolve(node, table)
        if dotted is None:
            continue
        if dotted.startswith("numpy.random."):
            tail = dotted.removeprefix("numpy.random.")
            if tail.split(".", 1)[0] not in _NP_RANDOM_ALLOWED:
                yield Finding(
                    check="rng", path=file.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=(f"{dotted} uses numpy's module-level RNG "
                             "state; draw from an explicit seeded "
                             "Generator argument instead"),
                )
                continue
        elif dotted.startswith("random."):
            tail = dotted.removeprefix("random.")
            if tail.split(".", 1)[0] not in _PY_RANDOM_ALLOWED:
                yield Finding(
                    check="rng", path=file.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=(f"{dotted} uses the shared module-level "
                             "random state; use a seeded random.Random "
                             "instance instead"),
                )
                continue
        # Seeded-construction rule: the allowed constructors must be
        # called with an explicit seed.
        if dotted in ("numpy.random.default_rng", "random.Random"):
            call = call_funcs.get(id(node))
            if call is not None and not call.args and not call.keywords:
                yield Finding(
                    check="rng", path=file.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=(f"{dotted}() without a seed is entropy-"
                             "seeded; thread an explicit seed through"),
                )
    # ``from numpy.random import default_rng`` then ``default_rng()``:
    # the func is a bare Name, which the Attribute walk cannot see.
    for call in call_funcs.values():
        if isinstance(call.func, ast.Name):
            dotted = table.get(call.func.id)
            if dotted in ("numpy.random.default_rng", "random.Random") \
                    and not call.args and not call.keywords:
                yield Finding(
                    check="rng", path=file.rel, line=call.lineno,
                    col=call.col_offset + 1,
                    message=(f"{dotted}() without a seed is entropy-"
                             "seeded; thread an explicit seed through"),
                )


@register("rng")
def check_rng(project: LintProject) -> Iterator[Finding]:
    """Ban module-level / unseeded RNG everywhere."""
    for file in project.files:
        yield from _rng_file(file)


def _is_set_build(node: ast.expr, table: dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset") \
                and node.func.id not in table:
            return True
    return False


def _wall_clock_file(file: SourceFile, hot: bool) -> Iterator[Finding]:
    table = import_table(file.tree)
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Attribute):
            dotted = resolve(node, table)
            if dotted is None:
                continue
            if dotted in _WALL_CLOCK:
                yield Finding(
                    check="wall-clock", path=file.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=(f"{dotted} reads the wall clock; simulated "
                             "time is the only time in this repo"),
                )
            elif hot and dotted in _TIMERS:
                yield Finding(
                    check="wall-clock", path=file.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=(f"{dotted} inside a hot kernel/engine "
                             "package; if this is timing "
                             "instrumentation, suppress with a reason"),
                )
        elif hot and isinstance(node, ast.For) \
                and _is_set_build(node.iter, table):
            yield Finding(
                check="wall-clock", path=file.rel, line=node.lineno,
                col=node.col_offset + 1,
                message=("iterating a freshly-built set: iteration "
                         "order is a hash-seed artefact; sort it or "
                         "use a list/tuple"),
            )
    # ``from time import perf_counter`` style bindings.
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            dotted = table.get(node.id)
            if dotted is None or "." not in dotted:
                continue
            if dotted in _WALL_CLOCK or (hot and dotted in _TIMERS):
                yield Finding(
                    check="wall-clock", path=file.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=(f"{dotted} (imported by name) is banned "
                             "here; simulated time is the only time"),
                )


@register("wall-clock")
def check_wall_clock(project: LintProject) -> Iterator[Finding]:
    """Ban nondeterminism sources in kernels and engines."""
    for file in project.files:
        hot = file.in_package(*_HOT_PACKAGES)
        yield from _wall_clock_file(file, hot)

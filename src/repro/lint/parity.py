"""``kernel-parity``: the three kernel tiers must agree *statically*.

``repro.kernels`` keeps one scalar reference body per kernel
(``_scalar.py``), jitted verbatim by the numba tier and re-exposed by
the cffi tier as a python wrapper over a C translation (``_cbuild.py``).
Tier drift — a renamed argument, a reordered parameter, a dtype change
on one side only — today surfaces as a JIT failure on first import or,
worse, as a conformance-suite divergence after minutes of simulation.
This check makes drift a lint error instead:

* the ``KernelBackend`` fallbacks, the numba jit table and the cffi
  wrapper methods must each cover exactly the scalar kernel set, under
  the same names;
* every cffi wrapper's python signature must equal the scalar
  signature, name for name, position for position;
* every ``lib.k_*`` call must match a prototype in ``_cbuild.py``'s
  ``CDEF`` block in arity; where the wrapper's pointer casts
  (``self._d`` → ``double *`` …) and ``float()``/``int()`` coercions
  make the expected C type or argument name derivable, those must match
  the prototype too — argument *dtype* drift between python and C is a
  lint error;
* scalar bodies that get jitted must stay inside a nopython-safe
  subset (no dict/set/comprehension state, no try/with/yield/closures,
  no f-strings), so the numba tier can never fall into object mode.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .core import Finding, LintProject, SourceFile, register

__all__ = ["check_kernel_parity"]

#: cffi pointer-cast helper -> canonical C parameter type.
_CAST_TYPES = {
    "_d": "double*",
    "_f": "float*",
    "_i": "int64_t*",
    "_u8": "uint8_t*",
    "_i8": "int8_t*",
}

#: python scalar coercion -> canonical C parameter type.
_COERCE_TYPES = {"float": "double", "int": "int64_t"}

#: AST constructs that force numba out of nopython mode (or into
#: reflected containers) inside a jitted body.
_OBJECT_MODE_NODES: tuple[tuple[type[ast.AST], str], ...] = (
    (ast.Dict, "dict literal"),
    (ast.DictComp, "dict comprehension"),
    (ast.Set, "set literal"),
    (ast.SetComp, "set comprehension"),
    (ast.GeneratorExp, "generator expression"),
    (ast.Lambda, "lambda"),
    (ast.Try, "try/except"),
    (ast.With, "with block"),
    (ast.Yield, "yield"),
    (ast.YieldFrom, "yield from"),
    (ast.Global, "global statement"),
    (ast.Nonlocal, "nonlocal statement"),
    (ast.ClassDef, "class definition"),
    (ast.JoinedStr, "f-string"),
    (ast.Await, "await"),
    (ast.Starred, "star-unpacking"),
)


def _finding(file: SourceFile, node: ast.AST, message: str) -> Finding:
    return Finding(
        check="kernel-parity", path=file.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


def _arg_names(fn: ast.FunctionDef) -> list[str]:
    spec = fn.args
    return [a.arg for a in spec.posonlyargs + spec.args + spec.kwonlyargs]


def _scalar_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {node.name: node for node in tree.body
            if isinstance(node, ast.FunctionDef)}


def _class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _scalar_attr(node: ast.expr) -> str | None:
    """The ``X`` in a ``_scalar.X`` reference."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "_scalar":
        return node.attr
    return None


def _base_table(cls: ast.ClassDef) -> dict[str, tuple[str, ast.AST]]:
    """``name -> (scalar_name, node)`` for ``staticmethod(_scalar.X)``."""
    out: dict[str, tuple[str, ast.AST]] = {}
    for node in cls.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name) \
                and node.value.func.id == "staticmethod" \
                and len(node.value.args) == 1:
            scalar_name = _scalar_attr(node.value.args[0])
            if scalar_name is not None:
                out[node.targets[0].id] = (scalar_name, node)
    return out


def _numba_tables(cls: ast.ClassDef) -> tuple[
        dict[str, tuple[str, ast.AST]], dict[str, ast.AST]]:
    """Jit assignments in ``_NumbaKernels.__init__``.

    Returns ``(self.X = jit(_scalar.Y) table, _scalar._h = jit(...)
    helper table)``.
    """
    methods: dict[str, tuple[str, ast.AST]] = {}
    helpers: dict[str, ast.AST] = {}
    init = next((n for n in cls.body if isinstance(n, ast.FunctionDef)
                 and n.name == "__init__"), None)
    if init is None:
        return methods, helpers
    for node in ast.walk(init):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id == "jit"
                and len(node.value.args) == 1):
            continue
        scalar_name = _scalar_attr(node.value.args[0])
        if scalar_name is None:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name):
            if target.value.id == "self":
                methods[target.attr] = (scalar_name, node)
            elif target.value.id == "_scalar":
                helpers[scalar_name] = node
    return methods, helpers


# -- CDEF prototype parsing ------------------------------------------------

_PROTO_RE = re.compile(
    r"(?:^|;)\s*[A-Za-z_][\w]*\s*\*?\s*(k_\w+)\s*\(([^)]*)\)")


def _parse_cdef(text: str) -> dict[str, list[tuple[str, str]]]:
    """``k_name -> [(canonical_ctype, param_name), ...]`` from CDEF."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", " ", text)
    flat = " ".join(text.split())
    out: dict[str, list[tuple[str, str]]] = {}
    for match in _PROTO_RE.finditer(flat):
        name, params_src = match.group(1), match.group(2).strip()
        params: list[tuple[str, str]] = []
        if params_src and params_src != "void":
            for piece in params_src.split(","):
                tokens = piece.replace("*", " * ").split()
                if not tokens:
                    continue
                pname = tokens[-1]
                ctype = "".join(tokens[:-1]).replace("const", "")
                params.append((ctype, pname))
        out[name] = params
    return out


# -- cffi wrapper call analysis --------------------------------------------

def _lib_call_name(call: ast.Call) -> str | None:
    """``k_*`` function name for a call through any lib handle."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr.startswith("k_"):
        return func.attr
    return None


def _classify_arg(node: ast.expr) -> tuple[str | None, str | None]:
    """``(canonical_ctype, source_name)`` for one C-call argument."""
    if isinstance(node, ast.Call) and len(node.args) == 1:
        func = node.func
        inner = node.args[0]
        name = inner.id if isinstance(inner, ast.Name) else None
        if isinstance(func, ast.Attribute) and func.attr in _CAST_TYPES:
            return _CAST_TYPES[func.attr], name
        if isinstance(func, ast.Name) and func.id in _COERCE_TYPES:
            return _COERCE_TYPES[func.id], name
    if isinstance(node, ast.Subscript):  # x.shape[0]
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "shape":
            return "int64_t", None
    return None, None


def _check_lib_calls(file: SourceFile,
                     protos: dict[str, list[tuple[str, str]]],
                     ) -> Iterator[Finding]:
    used: set[str] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Attribute) and node.attr.startswith("k_"):
            used.add(node.attr)
        if not isinstance(node, ast.Call):
            continue
        name = _lib_call_name(node)
        if name is None:
            continue
        proto = protos.get(name)
        if proto is None:
            yield _finding(file, node,
                           f"{name} is called but has no prototype in "
                           "_cbuild.py's CDEF block")
            continue
        if len(node.args) != len(proto):
            yield _finding(
                file, node,
                f"{name} called with {len(node.args)} arguments but its "
                f"C prototype declares {len(proto)}")
            continue
        for pos, (arg, (ctype, pname)) in enumerate(zip(node.args, proto)):
            got_type, got_name = _classify_arg(arg)
            if got_type is not None and got_type != ctype:
                yield _finding(
                    file, arg,
                    f"{name} argument {pos + 1} ({pname}) is marshalled "
                    f"as {got_type} but the C prototype declares {ctype}")
            if got_name is not None and ctype.endswith("*") \
                    and got_name != pname:
                yield _finding(
                    file, arg,
                    f"{name} argument {pos + 1} passes array "
                    f"{got_name!r} where the C prototype names the "
                    f"parameter {pname!r}; tier argument names drifted")
    for name in sorted(set(protos) - used):
        yield _finding(file, file.tree,
                       f"C prototype {name} in _cbuild.py is never "
                       "referenced by the cffi tier in _backend.py")


def _check_nopython(file: SourceFile, fn: ast.FunctionDef) -> Iterator[Finding]:
    for node in ast.walk(fn):
        if isinstance(node, ast.FunctionDef) and node is not fn:
            yield _finding(file, node,
                           f"nested function {node.name!r} inside jitted "
                           f"kernel {fn.name!r}: closures are not "
                           "nopython-safe")
            continue
        for bad_type, label in _OBJECT_MODE_NODES:
            if isinstance(node, bad_type):
                yield _finding(
                    file, node,
                    f"{label} inside jitted kernel {fn.name!r} is not "
                    "nopython-safe; the numba tier would fail to compile")
                break


@register("kernel-parity")
def check_kernel_parity(project: LintProject) -> Iterator[Finding]:
    """Cross-check ``_scalar.py`` / ``_backend.py`` / ``_cbuild.py``."""
    scalar = project.repro_source("kernels/_scalar.py")
    backend = project.repro_source("kernels/_backend.py")
    cbuild = project.repro_source("kernels/_cbuild.py")
    if scalar is None or backend is None or cbuild is None:
        # Not a repro tree (fixtures without kernels): nothing to check.
        return

    scalar_fns = _scalar_functions(scalar.tree)
    base_cls = _class(backend.tree, "KernelBackend")
    numba_cls = _class(backend.tree, "_NumbaKernels")
    cffi_cls = _class(backend.tree, "_CffiKernels")
    if base_cls is None or numba_cls is None or cffi_cls is None:
        yield _finding(backend, backend.tree,
                       "_backend.py must define KernelBackend, "
                       "_NumbaKernels and _CffiKernels")
        return

    base = _base_table(base_cls)
    kernel_names = set(base)

    # 1. the fallback table must re-export scalar functions by name.
    for name, (scalar_name, node) in sorted(base.items()):
        if name != scalar_name:
            yield _finding(backend, node,
                           f"KernelBackend.{name} re-exports "
                           f"_scalar.{scalar_name}; tier names drifted")
        if scalar_name not in scalar_fns:
            yield _finding(backend, node,
                           f"KernelBackend.{name} references "
                           f"_scalar.{scalar_name}, which does not exist")

    # 2. the numba tier must jit exactly the same kernel set.
    numba, helpers = _numba_tables(numba_cls)
    for name, (scalar_name, node) in sorted(numba.items()):
        if name != scalar_name:
            yield _finding(backend, node,
                           f"_NumbaKernels jits _scalar.{scalar_name} "
                           f"onto self.{name}; tier names drifted")
    for name in sorted(kernel_names - set(numba)):
        yield _finding(backend, numba_cls,
                       f"_NumbaKernels never jits kernel {name!r}; the "
                       "numba tier would silently run interpreted python")
    for name in sorted(set(numba) - kernel_names):
        yield _finding(backend, numba[name][1],
                       f"_NumbaKernels jits {name!r}, which is not a "
                       "KernelBackend kernel")

    # 3. cffi wrappers: python signature parity with the scalar bodies.
    cffi_methods = {node.name: node for node in cffi_cls.body
                    if isinstance(node, ast.FunctionDef)}
    for name in sorted(kernel_names):
        scalar_fn = scalar_fns.get(name)
        wrapper = cffi_methods.get(name)
        if scalar_fn is None:
            continue  # already reported against the base table
        if wrapper is None:
            yield _finding(backend, cffi_cls,
                           f"_CffiKernels has no wrapper for kernel "
                           f"{name!r}")
            continue
        want = _arg_names(scalar_fn)
        got = _arg_names(wrapper)
        got = got[1:] if got[:1] == ["self"] else got
        if want != got:
            yield _finding(
                backend, wrapper,
                f"_CffiKernels.{name} signature {got} does not match "
                f"the scalar reference signature {want}; tier "
                "signatures drifted")

    # 4. C prototypes vs the marshalling the wrappers actually do.
    cdef_text: str | None = None
    for node in cbuild.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "CDEF" \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            cdef_text = node.value.value
    if cdef_text is None:
        yield _finding(cbuild, cbuild.tree,
                       "_cbuild.py has no module-level CDEF string "
                       "literal to check prototypes against")
    else:
        protos = _parse_cdef(cdef_text)
        yield from _check_lib_calls(backend, protos)

    # 5. nopython-safety of every jitted scalar body.
    jitted = sorted(kernel_names | set(helpers))
    for name in jitted:
        fn = scalar_fns.get(name)
        if fn is not None:
            yield from _check_nopython(scalar, fn)

"""``obs-vocab``: every obs name literal must be registered.

The cross-engine conformance suite compares traces and metric
registries by *name*: an event kind, span, counter or histogram that
one engine spells differently is invisible to the comparison and rots
the contract.  This check resolves every name literal passed to the
:class:`repro.obs.Observability` surface (``event``/``span``/
``add_span``/``count``/``inc``/``observe*``/``gauge``/``histogram``/
``counter``/``emit_sign_switches``) against the registered vocabulary:

* event kinds — the ``EVENT_KINDS`` frozenset literal in
  ``repro/obs/trace.py``;
* span/counter/histogram/gauge names — the literal registries in
  ``repro/obs/vocab.py`` (exact names plus prefix/suffix rules for
  dynamic tails such as per-engine histograms).

Both registries are extracted from the AST of their defining files, so
the check needs no imports and works on an un-importable tree.
F-strings are matched as wildcard templates after folding same-module
string constants (``f"{WARMUP_SPAN}.{tier}"`` checks the literal
prefix); a template with no literal anchor is unverifiable and skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from .core import Finding, LintProject, SourceFile, register

__all__ = ["ObsVocabulary", "check_obs_vocab", "load_vocabulary"]

#: Observability method name -> vocabulary family.
_METHOD_FAMILY = {
    "event": "event",
    "span": "span",
    "add_span": "span",
    "count": "counter",
    "inc": "counter",
    "counter": "counter",
    "observe": "histogram",
    "observe_many": "histogram",
    "observe_array": "histogram",
    "histogram": "histogram",
    "gauge": "gauge",
}


@dataclass(frozen=True)
class ObsVocabulary:
    """Registered names per family, with prefix/suffix rules."""

    events: frozenset[str]
    names: dict[str, frozenset[str]]
    prefixes: dict[str, tuple[str, ...]]
    suffixes: dict[str, tuple[str, ...]]

    def match_exact(self, family: str, name: str) -> bool:
        if family == "event":
            return name in self.events
        if name in self.names.get(family, frozenset()):
            return True
        if any(name.startswith(p) and len(name) > len(p)
               for p in self.prefixes.get(family, ())):
            return True
        return any(name.endswith(s) and len(name) > len(s)
                   for s in self.suffixes.get(family, ()))

    def match_template(self, family: str, head: str, tail: str) -> bool:
        """Match a wildcard template by its literal head and tail."""
        if family == "event":
            return False  # event kinds are a closed set: no wildcards
        for name in self.names.get(family, frozenset()):
            if name.startswith(head) and name.endswith(tail):
                return True
        if any(head.startswith(p) for p in self.prefixes.get(family, ())):
            return True
        return any(tail.endswith(s) for s in self.suffixes.get(family, ()))


def _literal_strings(tree: ast.Module, var: str) -> frozenset[str] | None:
    """The string elements of a module-level tuple/set/frozenset literal."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not any(
                isinstance(t, ast.Name) and t.id == var for t in targets):
            continue
        if isinstance(value, ast.Call) and len(value.args) == 1:
            value = value.args[0]
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            items = []
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    items.append(elt.value)
                else:
                    return None
            return frozenset(items)
    return None


def load_vocabulary(project: LintProject) -> ObsVocabulary | None:
    """Extract the registries from the obs sources, or None if absent."""
    trace = project.repro_source("obs/trace.py")
    vocab = project.repro_source("obs/vocab.py")
    if trace is None or vocab is None:
        return None
    events = _literal_strings(trace.tree, "EVENT_KINDS")
    if events is None:
        return None
    names: dict[str, frozenset[str]] = {}
    prefixes: dict[str, tuple[str, ...]] = {}
    suffixes: dict[str, tuple[str, ...]] = {}
    for family, stem in (("span", "SPAN"), ("counter", "COUNTER"),
                         ("histogram", "HISTOGRAM"), ("gauge", "GAUGE")):
        exact = _literal_strings(vocab.tree, f"{stem}_NAMES")
        if exact is None:
            return None
        names[family] = exact
        pre = _literal_strings(vocab.tree, f"{stem}_PREFIXES")
        prefixes[family] = tuple(sorted(pre)) if pre is not None else ()
        suf = _literal_strings(vocab.tree, f"{stem}_SUFFIXES")
        suffixes[family] = tuple(sorted(suf)) if suf is not None else ()
    return ObsVocabulary(events=events, names=names, prefixes=prefixes,
                         suffixes=suffixes)


def _module_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings for f-string folding."""
    out: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            out[node.targets[0].id] = node.value.value
    return out


def _templates(node: ast.expr, consts: dict[str, str]) -> list[str]:
    """Render a name expression to wildcard templates, or [] if opaque.

    A plain string renders to itself; an f-string renders each constant
    part verbatim, folds module-level string constants, and turns every
    other interpolation into ``*``.  Conditional expressions render
    both arms.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        return _templates(node.body, consts) + _templates(node.orelse, consts)
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            elif isinstance(piece, ast.FormattedValue) \
                    and isinstance(piece.value, ast.Name) \
                    and piece.value.id in consts:
                parts.append(consts[piece.value.id])
            else:
                parts.append("*")
        return ["".join(parts)]
    return []


def _check_name(file: SourceFile, vocab: ObsVocabulary, family: str,
                node: ast.expr, consts: dict[str, str]) -> Iterator[Finding]:
    for template in _templates(node, consts):
        if "*" not in template:
            if not vocab.match_exact(family, template):
                yield Finding(
                    check="obs-vocab", path=file.rel, line=node.lineno,
                    col=node.col_offset + 1,
                    message=(f"{family} name {template!r} is not in the "
                             "registered obs vocabulary "
                             "(repro/obs/vocab.py, EVENT_KINDS)"),
                )
            continue
        head = template.split("*", 1)[0]
        tail = template.rsplit("*", 1)[1]
        if not head and not tail:
            continue  # fully dynamic: statically unverifiable
        if not vocab.match_template(family, head, tail):
            yield Finding(
                check="obs-vocab", path=file.rel, line=node.lineno,
                col=node.col_offset + 1,
                message=(f"dynamic {family} name {template!r} matches no "
                         "registered vocabulary rule "
                         "(repro/obs/vocab.py)"),
            )


def _vocab_file(file: SourceFile, vocab: ObsVocabulary) -> Iterator[Finding]:
    consts = _module_constants(file.tree)
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            family = _METHOD_FAMILY.get(func.attr)
            if family is not None and node.args:
                yield from _check_name(file, vocab, family, node.args[0],
                                       consts)
        elif isinstance(func, ast.Name) and func.id == "emit_sign_switches":
            for keyword in node.keywords:
                if keyword.arg == "kind":
                    yield from _check_name(file, vocab, "event",
                                           keyword.value, consts)


@register("obs-vocab")
def check_obs_vocab(project: LintProject) -> Iterator[Finding]:
    """Resolve every obs name literal against the registered vocabulary."""
    vocab = load_vocabulary(project)
    if vocab is None:
        # Warn only when there is a repro tree whose registries we
        # failed to read; linting unrelated files is not an error.
        if project.files and project.repro_root is not None:
            first = project.files[0]
            yield Finding(
                check="obs-vocab", path=first.rel, line=1, col=1,
                message=("cannot locate the obs vocabulary sources "
                         "(repro/obs/trace.py, repro/obs/vocab.py); "
                         "obs name literals were not checked"),
                severity="warning",
            )
        return
    for file in project.files:
        yield from _vocab_file(file, vocab)

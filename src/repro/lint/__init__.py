"""Repo-specific static analysis enforcing the invariants the test
suite can only sample: determinism (RNG/wall-clock discipline),
kernel-tier parity, obs-vocabulary registration, and engine-seam
totality.

Run it as ``repro lint [paths]`` or programmatically::

    from repro.lint import run_lint
    findings = run_lint([Path("src/repro")])

Checks are stdlib-only AST analyses — the tree never has to be
importable (no numpy/numba needed), which is what lets the linter gate
CI before any heavyweight dependency is installed.
"""

from __future__ import annotations

from .core import (
    CHECKS,
    Finding,
    LintError,
    LintProject,
    SourceFile,
    Suppression,
    check_names,
    collect_files,
    register,
    run_lint,
)

# Importing the check modules populates the CHECKS registry.
from . import determinism as _determinism  # noqa: F401
from . import parity as _parity  # noqa: F401
from . import seams as _seams  # noqa: F401
from . import vocab as _vocab  # noqa: F401
from .report import render_json, render_text, worst_severity

__all__ = [
    "CHECKS",
    "Finding",
    "LintError",
    "LintProject",
    "SourceFile",
    "Suppression",
    "check_names",
    "collect_files",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "worst_severity",
]

"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Iterable

from .core import Finding

__all__ = ["render_json", "render_text", "worst_severity"]


def render_text(findings: Iterable[Finding]) -> str:
    """One ``path:line:col: [check] message`` line per finding."""
    items = list(findings)
    lines = [f.render() for f in items]
    errors = sum(1 for f in items if f.severity == "error")
    warnings = len(items) - errors
    if items:
        lines.append("")
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Stable JSON document (``{"findings": [...], "summary": {...}}``)."""
    items = list(findings)
    doc = {
        "findings": [f.to_json_obj() for f in items],
        "summary": {
            "errors": sum(1 for f in items if f.severity == "error"),
            "warnings": sum(1 for f in items if f.severity != "error"),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def worst_severity(findings: Iterable[Finding]) -> int:
    """Process exit code: 1 when any error-severity finding exists."""
    return 1 if any(f.severity == "error" for f in findings) else 0

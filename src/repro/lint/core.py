"""Visitor core of the repo-specific static analysis suite.

The linter parses every target file once into an :class:`ast.Module`
(:class:`SourceFile`), bundles the parses into a :class:`LintProject`,
and hands the project to each registered check.  Checks are plain
functions ``(LintProject) -> Iterable[Finding]`` registered with
:func:`register`; per-file checks iterate ``project.files``, cross-file
checks (kernel-tier parity) read companion sources through
``project.repro_source``.

Suppressions are inline comments on the offending line::

    started = time.perf_counter()  # repro-lint: disable=wall-clock -- timing span

The ``-- reason`` is mandatory: a suppression without one, and a
suppression that matches no finding, are themselves findings (the
``suppression`` meta-check), so the suppression inventory can never rot
silently.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "LintError",
    "LintProject",
    "SourceFile",
    "Suppression",
    "CHECKS",
    "register",
    "check_names",
    "collect_files",
    "run_lint",
]

#: ``# repro-lint: disable=<check>[,<check>...] [-- reason]``
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,-]+)(?:\s*--\s*(?P<reason>.*))?"
)


class LintError(Exception):
    """Unrecoverable analysis failure (unreadable file, bad check name)."""


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which check, and what invariant broke."""

    check: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.check}] {self.message}")

    def to_json_obj(self) -> dict[str, object]:
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One inline disable comment."""

    line: int
    checks: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class SourceFile:
    """One parsed target file."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def module(self) -> str:
        """Dotted module path when the file lives under a ``repro`` dir,
        else the bare stem (fixture files, tools)."""
        parts = self.path.parts
        if "repro" in parts:
            tail = parts[parts.index("repro"):]
            name = ".".join(tail)
            name = name.removesuffix(".py")
            return name.removesuffix(".__init__")
        return self.path.stem

    def in_package(self, *packages: str) -> bool:
        """True when the module falls under any dotted package prefix.

        Files that do not map into ``repro.*`` (lint fixtures, scripts)
        match every package, so the full check battery applies to them.
        """
        module = self.module
        if not module.startswith("repro"):
            return True
        return any(module == p or module.startswith(p + ".")
                   for p in packages)

    def suppressed(self, check: str, line: int) -> bool:
        """Consume a matching suppression for ``check`` on ``line``."""
        for sup in self.suppressions:
            if sup.line == line and check in sup.checks:
                sup.used = True
                return True
        return False


CheckFn = Callable[["LintProject"], Iterable[Finding]]

#: name -> check function; populated by the :func:`register` decorator
#: when :mod:`repro.lint` imports the check modules.
CHECKS: dict[str, CheckFn] = {}


def register(name: str) -> Callable[[CheckFn], CheckFn]:
    """Class-of-one decorator adding a check under ``name``."""
    def wrap(fn: CheckFn) -> CheckFn:
        if name in CHECKS:
            raise LintError(f"duplicate check name {name!r}")
        CHECKS[name] = fn
        return fn
    return wrap


def check_names() -> tuple[str, ...]:
    """All registered check names (stable order)."""
    return tuple(sorted(CHECKS))


def _parse_suppressions(path: Path, text: str) -> list[Suppression]:
    """Extract ``repro-lint`` comments with real tokenization.

    Using :mod:`tokenize` rather than a line regex keeps the marker
    inert inside string literals (the fixture files spell it out).
    """
    out: list[Suppression] = []
    lines = iter(text.splitlines(keepends=True))
    try:
        for tok in tokenize.generate_tokens(lambda: next(lines, "")):
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            checks = tuple(c for c in match.group(1).split(",") if c)
            reason = (match.group("reason") or "").strip()
            out.append(Suppression(tok.start[0], checks, reason))
    except tokenize.TokenError as exc:
        raise LintError(f"{path}: cannot tokenize: {exc}") from exc
    return out


def _load(path: Path, rel: str) -> SourceFile:
    try:
        text = path.read_text()
    except OSError as exc:
        raise LintError(f"{path}: unreadable: {exc}") from exc
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc}") from exc
    return SourceFile(path=path, rel=rel, text=text, tree=tree,
                      suppressions=_parse_suppressions(path, text))


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif not path.exists():
            raise LintError(f"{path}: no such file or directory")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for cand in candidates:
            resolved = cand.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(cand)
    return out


@dataclass
class LintProject:
    """Everything the checks see: parsed targets + companion lookups."""

    files: list[SourceFile]
    #: Directory of the ``repro`` package itself, for checks that read
    #: registry sources (obs vocabulary, kernel tiers) even when those
    #: files are not among the lint targets.
    repro_root: Path | None = None
    _companions: dict[str, SourceFile | None] = field(default_factory=dict)

    def repro_source(self, rel: str) -> SourceFile | None:
        """Parse ``<repro_root>/<rel>`` lazily; None when unavailable.

        When the file is already a lint target its parse (and its
        suppression table) is shared, so findings raised against a
        companion land on the same object the per-file checks use.
        """
        cached = self._companions.get(rel)
        if cached is not None or rel in self._companions:
            return cached
        found: SourceFile | None = None
        suffix = "repro/" + rel
        for file in self.files:
            if file.path.as_posix().endswith(suffix):
                found = file
                break
        if found is None and self.repro_root is not None:
            candidate = self.repro_root / rel
            if candidate.is_file():
                found = _load(candidate, str(candidate))
        self._companions[rel] = found
        return found


def _detect_repro_root(files: list[SourceFile]) -> Path | None:
    for file in files:
        parts = file.path.resolve().parts
        if "repro" in parts:
            idx = parts.index("repro")
            return Path(*parts[: idx + 1])
    return None


def _suppression_findings(file: SourceFile, known: set[str],
                          ran: set[str]) -> Iterator[Finding]:
    for sup in file.suppressions:
        unknown = [c for c in sup.checks if c not in known]
        if unknown:
            yield Finding(
                check="suppression", path=file.rel, line=sup.line, col=1,
                message=(f"disable names unknown check(s) "
                         f"{', '.join(sorted(unknown))}; "
                         f"known: {', '.join(sorted(known))}"),
            )
        if not sup.reason:
            yield Finding(
                check="suppression", path=file.rel, line=sup.line, col=1,
                message=("suppression without a reason; append "
                         "'-- <why this violation is intentional>'"),
            )
        elif not sup.used and not unknown and ran.intersection(sup.checks):
            yield Finding(
                check="suppression", path=file.rel, line=sup.line, col=1,
                message=(f"unused suppression for "
                         f"{', '.join(sup.checks)}: nothing was "
                         "flagged on this line; remove it"),
                severity="warning",
            )


def run_lint(paths: Iterable[Path], *,
             select: Iterable[str] | None = None,
             repro_root: Path | None = None) -> list[Finding]:
    """Run the selected checks over ``paths`` and return the findings.

    ``select`` limits the run to a subset of :func:`check_names`;
    ``repro_root`` overrides companion-source detection (tests point it
    at synthetic trees).  Suppressed findings are dropped; defective or
    unused suppressions are appended as ``suppression`` findings.
    """
    names = check_names() if select is None else tuple(select)
    unknown = [n for n in names if n not in CHECKS]
    if unknown:
        raise LintError(
            f"unknown check(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(check_names())}"
        )
    root = Path.cwd()
    files: list[SourceFile] = []
    for path in collect_files(paths):
        try:
            rel = str(path.resolve().relative_to(root))
        except ValueError:
            rel = str(path)
        files.append(_load(path, rel))
    project = LintProject(files=files, repro_root=repro_root
                          if repro_root is not None
                          else _detect_repro_root(files))

    by_rel = {file.rel: file for file in files}

    def lookup(rel: str) -> SourceFile | None:
        file = by_rel.get(rel)
        if file is not None:
            return file
        for companion in project._companions.values():
            if companion is not None and companion.rel == rel:
                return companion
        return None

    findings: list[Finding] = []
    for name in names:
        for finding in CHECKS[name](project):
            file = lookup(finding.path)
            if file is not None and file.suppressed(name, finding.line):
                continue
            findings.append(finding)

    for file in files:
        findings.extend(
            _suppression_findings(file, set(CHECKS), set(names)))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
    return findings

"""``engine-seam``: engine dispatch sites must stay total.

Four engines reproduce the same dynamics behind two selector seams:
``engine=`` (packet: the registry literal ``PACKET_ENGINES`` in
``repro/simulation/network.py``) and ``fluid_method=`` /
``fluid_engine=`` (fluid).  Code that branches on a seam variable and
silently routes an unknown name down a default path is how a newly
registered engine ends up "working" while quietly running the wrong
implementation.

Two rules, per seam variable name:

* **unknown literal** — every string literal compared against, assigned
  to, iterated for, or passed as a seam keyword must be a registered
  engine name (catches typos like ``"referense"`` at analysis time);
* **non-exhaustive dispatch** — an ``if``/``elif`` equality chain on a
  seam variable that names two or more engines must either cover the
  whole registry or end in an ``else`` (the explicit fallthrough to the
  selector / the remaining engine).

The packet registry is read from the AST of ``network.py`` so the lint
can never drift from the code; the fluid seams are closed sets declared
here (guarded by the lint test suite against the runtime modules).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, LintProject, SourceFile, register
from .vocab import _literal_strings

__all__ = ["check_engine_seam", "seam_registries"]

#: Fallback when network.py is unavailable (synthetic test trees).
_PACKET_ENGINES_DEFAULT = frozenset({"reference", "batched", "compiled"})

#: fluid_vs_packet's fluid integrator selector.
_FLUID_ENGINES = frozenset({"reference", "batch"})

#: simulate_fluid_batch's kernel selector.
_FLUID_METHODS = frozenset({"numpy", "compiled", "auto"})

#: The sharded-fabric selector: ``shards=`` takes integers, None, or
#: this one literal (``MultiHopNetwork`` / ``repro.shard``).
_SHARDS_LITERALS = frozenset({"auto"})

#: The job-server request selector (``repro.serve``): every submitted
#: job names one of these kinds, and server-side dispatch on a
#: ``job_kind`` variable must stay total as kinds are added.
_JOB_KINDS = frozenset({"experiment", "scenario", "sweep"})

#: Seam keyword names that are safe to validate as *call keywords* too.
#: ``engine=`` is excluded there: obs records reuse the keyword for
#: engine *tags* ("packet.reference"), a different vocabulary.
_KEYWORD_SEAMS = ("fluid_method", "fluid_engine", "shards", "job_kind")

#: Engine selectors the obs layer tags records with, per family.  The
#: fluid family includes ``compiled`` (the CLI-level name for the
#: compiled-kernel batch integrator).
_TAG_FAMILIES = ("packet", "fluid")
_FLUID_TAG_ENGINES = frozenset({"reference", "batch", "compiled"})


def seam_registries(project: LintProject) -> dict[str, frozenset[str]]:
    """Seam variable name -> registered engine names."""
    packet = _PACKET_ENGINES_DEFAULT
    network = project.repro_source("simulation/network.py")
    if network is not None:
        extracted = _literal_strings(network.tree, "PACKET_ENGINES")
        if extracted:
            packet = extracted
    return {
        "engine": packet,
        "fluid_engine": _FLUID_ENGINES,
        "fluid_method": _FLUID_METHODS,
        "shards": _SHARDS_LITERALS,
        "job_kind": _JOB_KINDS,
    }


def accepted_literals(registries: dict[str, frozenset[str]]
                      ) -> dict[str, frozenset[str]]:
    """Seam name -> literals legal at *any* site naming that seam.

    ``engine`` additionally accepts the obs tag vocabulary: the empty
    sentinel plus qualified ``family.engine`` tags, validated against
    the per-family registries so a typo in a tag is still caught.
    """
    out = dict(registries)
    tags = {""}
    for family in _TAG_FAMILIES:
        engines = (_FLUID_TAG_ENGINES if family == "fluid"
                   else registries["engine"])
        tags.update(f"{family}.{engine}" for engine in engines)
    out["engine"] = registries["engine"] | tags
    return out


def _seam_name(node: ast.expr) -> str | None:
    """The seam variable name a Name/Attribute expression refers to."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _string_literals(node: ast.expr) -> list[tuple[str, ast.expr]] | None:
    """All string constants in a literal or literal container, or None."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return [(node.value, node)]
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[tuple[str, ast.expr]] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append((elt.value, elt))
        return out or None
    if isinstance(node, ast.IfExp):
        arms = (_string_literals(node.body) or []) + \
               (_string_literals(node.orelse) or [])
        return arms or None
    return None


def _unknown(file: SourceFile, seam: str, registry: frozenset[str],
             literals: list[tuple[str, ast.expr]]) -> Iterator[Finding]:
    for value, node in literals:
        if value not in registry:
            yield Finding(
                check="engine-seam", path=file.rel, line=node.lineno,
                col=node.col_offset + 1,
                message=(f"{value!r} is not a registered {seam} name; "
                         f"registered: {', '.join(sorted(registry))}"),
            )


def _compare_site(node: ast.Compare,
                  seams: dict[str, frozenset[str]]
                  ) -> tuple[str, list[tuple[str, ast.expr]]] | None:
    """(seam, literals) for a comparison involving a seam variable."""
    if len(node.ops) != 1:
        return None
    left, right = node.left, node.comparators[0]
    for var_side, lit_side in ((left, right), (right, left)):
        seam = _seam_name(var_side)
        if seam in seams:
            literals = _string_literals(lit_side)
            if literals is not None:
                return seam, literals
    return None


def _dispatch_chain(node: ast.If, seams: dict[str, frozenset[str]]
                    ) -> tuple[str, set[str], bool] | None:
    """Walk an if/elif chain of seam equality tests.

    Returns ``(seam, covered_names, has_else)`` when every test in the
    chain is an ``==`` comparison of the same seam variable against a
    string literal; None otherwise (mixed conditions are not dispatch).
    """
    seam: str | None = None
    covered: set[str] = set()
    current: ast.If = node
    while True:
        test = current.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)):
            return None
        site = _compare_site(test, seams)
        if site is None:
            return None
        test_seam, literals = site
        if seam is None:
            seam = test_seam
        elif seam != test_seam:
            return None
        covered.update(value for value, _ in literals)
        orelse = current.orelse
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            current = orelse[0]
            continue
        return seam, covered, bool(orelse)


def _seam_file(file: SourceFile,
               seams: dict[str, frozenset[str]],
               accepted: dict[str, frozenset[str]]) -> Iterator[Finding]:
    chain_members: set[int] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, ast.If) and id(node) not in chain_members:
            chain = _dispatch_chain(node, seams)
            if chain is not None:
                # Mark nested elif nodes so they are not re-walked as
                # fresh (shorter) chains.
                current = node
                while current.orelse and isinstance(current.orelse[0], ast.If) \
                        and len(current.orelse) == 1:
                    current = current.orelse[0]
                    chain_members.add(id(current))
                seam, covered, has_else = chain
                registry = seams[seam]
                if len(covered) >= 2 and not has_else \
                        and not registry <= covered:
                    missing = ", ".join(sorted(registry - covered))
                    yield Finding(
                        check="engine-seam", path=file.rel,
                        line=node.lineno, col=node.col_offset + 1,
                        message=(f"{seam} dispatch covers "
                                 f"{', '.join(sorted(covered))} but not "
                                 f"{missing} and has no else fallthrough; "
                                 "handle every registered engine or fall "
                                 "through explicitly"),
                    )
        if isinstance(node, ast.Compare):
            site = _compare_site(node, seams)
            if site is not None:
                seam, literals = site
                yield from _unknown(file, seam, accepted[seam], literals)
        elif isinstance(node, ast.For):
            seam = _seam_name(node.target)
            if seam in seams:
                literals = _string_literals(node.iter)
                if literals is not None:
                    yield from _unknown(file, seam, accepted[seam], literals)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                seam = _seam_name(target)
                if seam in seams:
                    literals = _string_literals(node.value)
                    if literals is not None:
                        yield from _unknown(file, seam, accepted[seam],
                                            literals)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            seam = _seam_name(node.target)
            if seam in seams:
                literals = _string_literals(node.value)
                if literals is not None:
                    yield from _unknown(file, seam, accepted[seam], literals)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            spec = node.args
            positional = spec.posonlyargs + spec.args
            defaults: list[tuple[ast.arg, ast.expr | None]] = list(zip(
                positional[len(positional) - len(spec.defaults):],
                spec.defaults))
            defaults += list(zip(spec.kwonlyargs, spec.kw_defaults))
            for arg, default in defaults:
                if default is not None and arg.arg in seams:
                    literals = _string_literals(default)
                    if literals is not None:
                        yield from _unknown(file, arg.arg, accepted[arg.arg],
                                            literals)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg in _KEYWORD_SEAMS:
                    literals = _string_literals(keyword.value)
                    if literals is not None:
                        yield from _unknown(file, keyword.arg,
                                            accepted[keyword.arg], literals)


@register("engine-seam")
def check_engine_seam(project: LintProject) -> Iterator[Finding]:
    """Validate engine-name literals and dispatch totality."""
    seams = seam_registries(project)
    accepted = accepted_literals(seams)
    for file in project.files:
        yield from _seam_file(file, seams, accepted)

"""Runner & caching — parallel experiment execution with a result cache.

The serial reference paths (:func:`repro.analysis.sweeps.sweep` and the
per-experiment loop in ``repro.experiments.__main__``) recompute every
point from scratch on each invocation.  This package is the scaling
layer on top of them:

* :func:`run_sweep_parallel` — a process-pool executor for sweep grids
  with chunked work distribution and record ordering identical to the
  serial :func:`~repro.analysis.sweeps.sweep` path (differentially
  tested against it);
* :func:`run_experiments` — the same treatment for the experiment
  registry (:func:`repro.experiments.base.all_experiments`);
* :class:`ResultCache` — a content-addressed on-disk cache (key =
  experiment id + canonicalised params + package version) with hit/miss
  statistics and explicit invalidation;
* :class:`RunnerStats` — per-point wall-time, cache hit-rate and
  worker-utilisation instrumentation, rendered as a summary table and
  surfaced in ``ExperimentResult.notes``;
* :class:`PersistentWorkerPool` — long-lived worker processes hosting
  named per-worker actors (build state once, step it thousands of
  times), the substrate of the sharded fabric engine
  (:mod:`repro.shard`).

Exposed on the CLI as ``python -m repro experiments --parallel
--workers N --cache-dir DIR`` (``--no-cache`` disables a configured
cache).
"""

from __future__ import annotations

from .cache import CacheStats, ResultCache, canonical_key
from .executor import run_experiments
from .instrumentation import PointTiming, RunnerStats
from .parallel import resolve_workers, run_sweep_parallel
from .pool import PersistentWorkerPool, WorkerError

__all__ = [
    "CacheStats",
    "PersistentWorkerPool",
    "PointTiming",
    "ResultCache",
    "RunnerStats",
    "WorkerError",
    "canonical_key",
    "resolve_workers",
    "run_experiments",
    "run_sweep_parallel",
]

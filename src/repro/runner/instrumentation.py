"""Timing and utilisation instrumentation for the parallel runner.

Every unit of work (one sweep grid point, one registered experiment)
reports a :class:`PointTiming` (defined in :mod:`repro.obs.profile`,
re-exported here); a :class:`RunnerStats` aggregates them into the
numbers a scaling PR cares about — total and per-point wall time, cache
hit rate, and worker utilisation (the fraction of the
``workers x elapsed`` budget actually spent computing).  The aggregate
renders as a plain-text summary table and as short note lines that the
experiment framework attaches to ``ExperimentResult.notes``.

When an :class:`~repro.obs.Observability` handle is attached (``obs``
field), every recorded point also feeds the runner metric family:
``runner.evaluated`` / ``runner.cache_hit`` counters, the
``runner.point_wall_seconds`` histogram and the accumulated
``runner.kernel_seconds``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import Observability, PointTiming, POINT_WALL_EDGES
from ..viz.series import format_table
from .cache import CacheStats

__all__ = ["PointTiming", "RunnerStats"]


@dataclass
class RunnerStats:
    """Aggregated runner instrumentation for one parallel run."""

    workers: int = 1
    elapsed: float = 0.0
    points: list[PointTiming] = field(default_factory=list)
    cache: CacheStats | None = None
    obs: Observability | None = None

    # -- recording ----------------------------------------------------------

    def record(self, label: str, wall: float, *, cached: bool = False,
               kernel: float = 0.0) -> None:
        if cached:
            # A cache hit runs no kernel: any kernel figure arriving
            # with one is the stale timing of the original computation
            # and must not inflate this run's kernel wall.
            kernel = 0.0
        self.points.append(
            PointTiming(label=label, wall=wall, cached=cached, kernel=kernel)
        )
        if self.obs is not None:
            self.obs.count("runner.cache_hit" if cached
                           else "runner.evaluated")
            if not cached:
                self.obs.observe("runner.point_wall_seconds", wall,
                                 POINT_WALL_EDGES)
                if kernel:
                    self.obs.count("runner.kernel_seconds", kernel)

    # -- derived quantities -------------------------------------------------

    @property
    def evaluated(self) -> int:
        """Work units actually computed (not served from the cache)."""
        return sum(1 for p in self.points if not p.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.points if p.cached)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / len(self.points) if self.points else 0.0

    @property
    def compute_wall(self) -> float:
        """Total wall time spent evaluating (sum over non-cached points)."""
        return sum(p.wall for p in self.points if not p.cached)

    @property
    def mean_point_wall(self) -> float:
        walls = [p.wall for p in self.points if not p.cached]
        return sum(walls) / len(walls) if walls else 0.0

    @property
    def max_point_wall(self) -> float:
        walls = [p.wall for p in self.points if not p.cached]
        return max(walls) if walls else 0.0

    @property
    def kernel_wall(self) -> float:
        """Total self-reported kernel time (sum over non-cached points)."""
        return sum(p.kernel for p in self.points if not p.cached)

    @property
    def overhead_wall(self) -> float:
        """``compute_wall - kernel_wall``: dispatch/serialisation cost.

        Only meaningful when the evaluated points report kernel time;
        otherwise it degenerates to ``compute_wall``.
        """
        return self.compute_wall - self.kernel_wall

    @property
    def kernel_fraction(self) -> float:
        """Fraction of compute wall spent in reported kernels."""
        return self.kernel_wall / self.compute_wall if self.compute_wall else 0.0

    @property
    def utilization(self) -> float:
        """``compute_wall / (workers * elapsed)`` — pool busy fraction.

        1.0 means every worker computed for the whole run; low values
        mean the pool idled (tiny grids, long tails, or cache hits).
        """
        budget = self.workers * self.elapsed
        return self.compute_wall / budget if budget > 0 else 0.0

    # -- rendering ----------------------------------------------------------

    def summary_rows(self) -> list[list]:
        rows = [
            ["work units", len(self.points)],
            ["evaluated", self.evaluated],
            ["cache hits", self.cache_hits],
            ["cache hit rate", self.cache_hit_rate],
            ["workers", self.workers],
            ["elapsed (s)", self.elapsed],
            ["compute wall (s)", self.compute_wall],
            ["mean point wall (s)", self.mean_point_wall],
            ["max point wall (s)", self.max_point_wall],
            ["worker utilization", self.utilization],
        ]
        if self.kernel_wall > 0.0:
            rows += [
                ["kernel wall (s)", self.kernel_wall],
                ["pool overhead (s)", self.overhead_wall],
                ["kernel fraction", self.kernel_fraction],
            ]
        if self.cache is not None:
            rows.append(["cache (process-wide)", self.cache.summary()])
        return rows

    def summary_table(self) -> str:
        """Plain-text summary in the house ``format_table`` style."""
        return format_table(["runner metric", "value"], self.summary_rows())

    def notes(self) -> list[str]:
        """Short note lines for ``ExperimentResult.notes``."""
        lines = [
            f"runner: {len(self.points)} work units on {self.workers} "
            f"worker(s) in {self.elapsed:.3f}s "
            f"(utilization {self.utilization:.0%})",
        ]
        if self.cache is not None or self.cache_hits:
            lines.append(
                f"runner cache: {self.cache_hits} hit(s), "
                f"{self.evaluated} evaluated "
                f"(hit rate {self.cache_hit_rate:.0%})"
            )
        if self.kernel_wall > 0.0:
            lines.append(
                f"runner kernels: {self.kernel_wall:.3f}s in kernels vs "
                f"{self.overhead_wall:.3f}s pool/dispatch overhead "
                f"(kernel fraction {self.kernel_fraction:.0%})"
            )
        return lines

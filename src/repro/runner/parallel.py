"""Process-pool parallel execution of sweep grids.

:func:`run_sweep_parallel` is a drop-in replacement for the serial
:func:`repro.analysis.sweeps.sweep` reference path: same arguments, same
:class:`~repro.analysis.sweeps.SweepResult`, and records in exactly the
same order with exactly the same values (the property suite
differentially tests the two).  On top of the reference semantics it
adds

* chunked distribution of grid points over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``workers=``
  defaults to ``os.cpu_count()``; ``0`` or ``1`` runs inline in the
  calling process, which is also how the cache logic is exercised
  without pool overhead);
* per-point lookup/store through a :class:`~repro.runner.cache.ResultCache`
  (key: ``cache_id`` + base params + overrides + package version), so a
  repeated sweep evaluates nothing;
* :class:`~repro.runner.instrumentation.RunnerStats` timing hooks.

``evaluate`` must be a **module-level callable** (the pool pickles it by
reference); parameter validation (``skip_invalid``) happens in the
parent process, exactly mirroring the serial path's ordering.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..analysis.sweeps import SweepResult, grid
from ..obs import MetricsRegistry, Observability, POINT_WALL_EDGES
from .cache import ResultCache
from .instrumentation import RunnerStats

__all__ = ["resolve_workers", "run_sweep_parallel"]

_MISS = object()


def resolve_workers(workers: int | None) -> int:
    """Effective worker count: ``None`` means ``os.cpu_count()``."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _chunked(items: Sequence, chunk_size: int) -> list[list]:
    return [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]


def _evaluate_chunk(
    evaluate: Callable[[Any], Mapping[str, Any]],
    chunk: list[tuple[int, dict[str, Any], Any]],
    collect_metrics: bool = False,
) -> tuple[list[tuple[int, dict[str, Any], float, float]], dict | None]:
    """Worker entry point: evaluate one chunk of (index, overrides, params).

    The reserved record key ``"_kernel_wall"`` lets an ``evaluate``
    report how much of its wall time was spent inside a numerical
    kernel (e.g. ``BatchFluidResult.kernel_seconds``): the key is popped
    here — it never reaches the sweep records or the cache — and
    surfaces as ``PointTiming.kernel``, so sweep summaries can separate
    per-point kernel time from pool dispatch overhead.

    With ``collect_metrics`` the chunk also returns a picklable
    worker-local :class:`~repro.obs.MetricsRegistry` snapshot
    (``runner.worker.*`` metrics) for the parent to merge — counter and
    histogram merges commute, so the completion order of pool futures
    cannot change the folded totals.
    """
    out: list[tuple[int, dict[str, Any], float, float]] = []
    for index, overrides, params in chunk:
        t0 = time.perf_counter()
        record: dict[str, Any] = dict(overrides)
        record.update(evaluate(params))
        kernel = float(record.pop("_kernel_wall", 0.0))
        out.append((index, record, time.perf_counter() - t0, kernel))
    if not collect_metrics:
        return out, None
    registry = MetricsRegistry()
    registry.inc("runner.worker.points", len(out))
    registry.inc("runner.worker.kernel_seconds",
                 sum(kernel for _, _, _, kernel in out))
    registry.observe_many("runner.worker.point_wall_seconds",
                          [wall for _, _, wall, _ in out], POINT_WALL_EDGES)
    return out, registry.snapshot()


def _sweep_cache_id(evaluate: Callable, cache_id: str | None) -> str:
    if cache_id is not None:
        return cache_id
    module = getattr(evaluate, "__module__", "<unknown>")
    qualname = getattr(evaluate, "__qualname__", repr(evaluate))
    return f"sweep:{module}.{qualname}"


def run_sweep_parallel(
    base: Any,
    axes: Mapping[str, Iterable[Any]],
    evaluate: Callable[[Any], Mapping[str, Any]],
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    cache: ResultCache | None = None,
    cache_id: str | None = None,
    skip_invalid: bool = True,
    stats: RunnerStats | None = None,
    obs: Observability | None = None,
) -> SweepResult:
    """Parallel, cached equivalent of :func:`repro.analysis.sweeps.sweep`.

    Returns a :class:`SweepResult` whose records are identical (same
    order, same values) to the serial reference path.  ``cache_id``
    names the grid in the cache (default: the qualified name of
    ``evaluate``); pass ``stats`` to collect timing instrumentation,
    ``obs`` to additionally collect the ``runner.*`` metric family with
    per-worker metric snapshots merged on result return.
    """
    started = time.perf_counter()
    n_workers = resolve_workers(workers)
    stats = stats if stats is not None else RunnerStats()
    stats.workers = max(1, n_workers)
    stats.cache = cache.stats if cache is not None else None
    if obs is not None and obs.enabled:
        stats.obs = obs
    collect_metrics = stats.obs is not None

    axes_lists = {name: list(values) for name, values in axes.items()}

    # Validate every grid point in the parent, preserving the serial
    # path's ordering and skip semantics exactly.
    points: list[tuple[int, dict[str, Any], Any]] = []
    for index, overrides in enumerate(grid(**axes_lists)):
        try:
            params = base.with_(**overrides)
        except ValueError:
            if skip_invalid:
                continue
            raise
        points.append((index, overrides, params))

    entry_id = _sweep_cache_id(evaluate, cache_id)
    records_by_index: dict[int, dict[str, Any]] = {}
    pending: list[tuple[int, dict[str, Any], Any]] = []
    for index, overrides, params in points:
        if cache is not None:
            hit = cache.get(entry_id, {"base": base, "overrides": overrides}, _MISS)
            if hit is not _MISS:
                records_by_index[index] = hit
                stats.record(f"point[{index}]", 0.0, cached=True)
                continue
        pending.append((index, overrides, params))

    if pending:
        if n_workers <= 1:
            computed, snapshot = _evaluate_chunk(evaluate, pending,
                                                 collect_metrics)
            if snapshot is not None:
                stats.obs.merge_metrics({"metrics": snapshot})
        else:
            if chunk_size is None:
                chunk_size = max(1, math.ceil(len(pending) / (4 * n_workers)))
            computed = []
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = [
                    pool.submit(_evaluate_chunk, evaluate, chunk,
                                collect_metrics)
                    for chunk in _chunked(pending, chunk_size)
                ]
                for future in as_completed(futures):
                    chunk_out, snapshot = future.result()
                    computed.extend(chunk_out)
                    if snapshot is not None:
                        stats.obs.merge_metrics({"metrics": snapshot})
        overrides_by_index = {index: overrides for index, overrides, _ in pending}
        for index, record, wall, kernel in computed:
            records_by_index[index] = record
            stats.record(f"point[{index}]", wall, kernel=kernel)
            if cache is not None:
                cache.put(
                    entry_id,
                    {"base": base, "overrides": overrides_by_index[index]},
                    record,
                )

    stats.elapsed = time.perf_counter() - started
    if stats.obs is not None:
        stats.obs.add_span("runner.sweep", stats.elapsed)
    return SweepResult(
        axes=axes_lists,
        records=[records_by_index[index] for index, _, _ in points],
    )

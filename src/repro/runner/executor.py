"""Parallel, cached execution of the experiment registry.

:func:`run_experiments` runs a set of registered experiments
(:func:`repro.experiments.base.all_experiments`) with the same three
ingredients as the sweep runner: a process pool, a
:class:`~repro.runner.cache.ResultCache` holding whole
:class:`~repro.experiments.base.ExperimentResult` objects, and
:class:`~repro.runner.instrumentation.RunnerStats` timing.  Results are
always returned in the requested id order, whatever order the pool
completes them in.

Option handling
---------------
``options`` is filtered per experiment against the ``run`` signature, so
runner-aware experiments (e.g. ``v1``'s ``parallel``/``workers``/
``cache_dir`` knobs) receive them while plain experiments only see what
they accept (typically ``render_plots``).  When more than one experiment
is dispatched to a pool, the execution knobs are stripped so worker
processes never spawn nested pools.  Execution knobs are also excluded
from the cache key — they change how a result is computed, never what it
is (the differential tests guarantee that), so a serial run primes the
cache for a parallel one.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Mapping

from ..experiments.base import ExperimentResult, all_experiments, get_experiment
from ..obs import Observability
from .cache import ResultCache
from .instrumentation import RunnerStats
from .parallel import resolve_workers

__all__ = ["run_experiments"]

#: Options that select an execution strategy rather than an experiment
#: outcome; stripped from cache keys and from pooled dispatch.
EXECUTION_OPTIONS = frozenset({"parallel", "workers", "cache_dir"})

_MISS = object()


def _accepted_options(run, options: Mapping[str, Any]) -> dict[str, Any]:
    """Subset of ``options`` the experiment's ``run`` signature accepts."""
    parameters = inspect.signature(run).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return dict(options)
    return {k: v for k, v in options.items() if k in parameters}


def _cache_params(options: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "options": {k: v for k, v in options.items() if k not in EXECUTION_OPTIONS}
    }


def _run_one(experiment_id: str, options: dict[str, Any]) -> tuple[ExperimentResult, float]:
    """Worker entry point: run one registered experiment, timed."""
    import repro.experiments  # noqa: F401 — registration side effects

    run = get_experiment(experiment_id)
    t0 = time.perf_counter()
    result = run(**options)
    return result, time.perf_counter() - t0


def run_experiments(
    ids: list[str] | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    options: Mapping[str, Any] | None = None,
    stats: RunnerStats | None = None,
    obs: Observability | None = None,
) -> list[tuple[str, ExperimentResult]]:
    """Run experiments by id, in parallel and through the cache.

    Parameters
    ----------
    ids:
        Experiment ids to run (default: every registered experiment,
        sorted).
    workers:
        Pool size; ``None`` means ``os.cpu_count()``, ``0``/``1`` runs
        inline.  A single requested experiment always runs inline — its
        own sweep-level parallelism (if any) is the useful axis there.
    cache:
        Optional :class:`ResultCache`; hits skip the run entirely and
        are annotated in the result's notes.
    options:
        Keyword options offered to every ``run``, filtered per
        signature (see module docstring).
    stats:
        Optional :class:`RunnerStats` to populate (one work unit per
        experiment).
    obs:
        Optional :class:`~repro.obs.Observability` handle; recorded
        work units feed the ``runner.*`` metric family and the whole
        invocation reports a ``runner.experiments`` span.
    """
    started = time.perf_counter()
    if ids is None:
        ids = sorted(all_experiments())
    options = dict(options or {})
    n_workers = resolve_workers(workers)
    pooled = n_workers > 1 and len(ids) > 1
    stats = stats if stats is not None else RunnerStats()
    stats.workers = max(1, n_workers) if pooled else 1
    stats.cache = cache.stats if cache is not None else None
    if obs is not None and obs.enabled:
        stats.obs = obs

    per_id_options: dict[str, dict[str, Any]] = {}
    for experiment_id in ids:
        accepted = _accepted_options(get_experiment(experiment_id), options)
        if pooled:
            accepted = {k: v for k, v in accepted.items()
                        if k not in EXECUTION_OPTIONS}
        per_id_options[experiment_id] = accepted

    results: dict[str, ExperimentResult] = {}
    pending: list[str] = []
    for experiment_id in ids:
        if cache is not None:
            entry = cache.get(
                experiment_id, _cache_params(per_id_options[experiment_id]), _MISS
            )
            if entry is not _MISS:
                result, stored_wall = entry["result"], entry["wall"]
                result.notes.append(
                    f"runner: cache hit (previous wall {stored_wall:.3f}s)"
                )
                results[experiment_id] = result
                stats.record(experiment_id, 0.0, cached=True)
                continue
        pending.append(experiment_id)

    def finish(experiment_id: str, result: ExperimentResult, wall: float) -> None:
        stats.record(experiment_id, wall)
        if cache is not None:
            cache.put(
                experiment_id,
                _cache_params(per_id_options[experiment_id]),
                {"result": result, "wall": wall},
            )
        result.notes.append(f"runner: computed in {wall:.3f}s")
        results[experiment_id] = result

    if pending:
        if not pooled:
            for experiment_id in pending:
                result, wall = _run_one(experiment_id, per_id_options[experiment_id])
                finish(experiment_id, result, wall)
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = {
                    pool.submit(_run_one, experiment_id,
                                per_id_options[experiment_id]): experiment_id
                    for experiment_id in pending
                }
                for future, experiment_id in futures.items():
                    result, wall = future.result()
                    finish(experiment_id, result, wall)

    stats.elapsed = time.perf_counter() - started
    if stats.obs is not None:
        stats.obs.add_span("runner.experiments", stats.elapsed)
    return [(experiment_id, results[experiment_id]) for experiment_id in ids]

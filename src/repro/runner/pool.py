"""A persistent worker pool hosting long-lived per-worker state.

:class:`~concurrent.futures.ProcessPoolExecutor` (used by
:mod:`repro.runner.parallel`) is built for one-shot task submission:
every task re-pickles its inputs and no state survives between tasks.
The sharded fabric engine (:mod:`repro.shard`) needs the opposite — a
worker builds a shard's entire simulation state *once* and then
receives thousands of tiny window-step commands against it.

:class:`PersistentWorkerPool` provides exactly that: ``n_workers``
processes, each running a command loop over a duplex pipe and hosting
named **actors** (arbitrary objects built in-worker from a picklable
factory).  Calls are explicitly pipelined: :meth:`call` only sends the
command, :meth:`result` collects the reply, so a coordinator can issue
one command to every worker and then gather — a single barrier round
trip per window instead of ``n_workers`` sequential ones.

Failures in a worker are caught there and re-raised in the parent as
:class:`WorkerError` carrying the remote traceback text.

A worker that *dies* mid-command (killed, OOM, segfault) is detected at
the next :meth:`~PersistentWorkerPool.result`/:meth:`~PersistentWorkerPool.call`
touching it: the pool raises :class:`WorkerError` with ``died=True`` and
**respawns a fresh process** in the dead worker's slot, so the pool
stays usable — but the replacement starts empty, so every actor the
dead worker hosted must be re-created by the caller (the job server's
retry path and the shard coordinator both rebuild from scratch).
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import Any, Callable

__all__ = ["PersistentWorkerPool", "WorkerError"]


class WorkerError(RuntimeError):
    """An exception raised inside a pool worker, with remote traceback.

    ``died`` distinguishes a worker that *raised* (the remote traceback
    is the real stack) from one that *vanished* mid-command (killed or
    crashed before it could answer; the pool has already respawned its
    slot and ``remote_traceback`` describes the death instead).
    """

    def __init__(self, worker: int, remote_traceback: str,
                 *, died: bool = False) -> None:
        verb = "died" if died else "raised"
        super().__init__(
            f"worker {worker} {verb}:\n{remote_traceback}"
        )
        self.worker = worker
        self.remote_traceback = remote_traceback
        self.died = died


def _worker_main(conn) -> None:
    """Command loop run inside each worker process.

    Commands are tuples; the first element selects the operation:

    * ``("create", name, factory, args, kwargs)`` — build an actor;
    * ``("call", name, method, args, kwargs)`` — invoke a method on it;
    * ``("stop",)`` — acknowledge and exit.

    Every command is answered with ``("ok", value)`` or ``("err",
    traceback_text)`` in command order, preserving the parent's
    pipelining contract.
    """
    actors: dict[str, Any] = {}
    while True:
        command = conn.recv()
        op = command[0]
        if op == "stop":
            conn.send(("ok", None))
            break
        try:
            if op == "create":
                _, name, factory, args, kwargs = command
                actors[name] = factory(*args, **kwargs)
                conn.send(("ok", None))
            elif op == "call":
                _, name, method, args, kwargs = command
                value = getattr(actors[name], method)(*args, **kwargs)
                conn.send(("ok", value))
            else:
                raise ValueError(f"unknown pool command {op!r}")
        except BaseException:
            conn.send(("err", traceback.format_exc()))


class PersistentWorkerPool:
    """``n_workers`` processes hosting named actors across many calls.

    Use as a context manager; :meth:`close` shuts the workers down and
    joins them.  All factories, methods arguments and return values
    must be picklable; factories and actor classes must be importable
    (module-level) in the worker.
    """

    def __init__(self, n_workers: int, *, mp_context: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._ctx = mp.get_context(mp_context)
        self._workers: list = [None] * n_workers
        self._conns: list = [None] * n_workers
        self._inflight = [0] * n_workers
        self._closed = False
        self.respawns = 0
        for worker in range(n_workers):
            self._spawn(worker)

    def _spawn(self, worker: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        self._workers[worker] = process
        self._conns[worker] = parent_conn
        self._inflight[worker] = 0

    def _respawn_dead(self, worker: int, context: str) -> WorkerError:
        """Replace a dead worker's slot; returns the error to raise.

        The dead worker's outstanding commands (and its actors) are
        gone; callers that pipelined more commands against it must
        rebuild after catching the returned :class:`WorkerError`.
        """
        process = self._workers[worker]
        try:
            self._conns[worker].close()
        except OSError:  # pragma: no cover - defensive
            pass
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - defensive
            process.terminate()
            process.join()
        exitcode = process.exitcode
        self.respawns += 1
        self._spawn(worker)
        return WorkerError(
            worker,
            f"worker process died {context} (exit code {exitcode}); "
            "a fresh worker was respawned but its actors are lost",
            died=True,
        )

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def worker_pid(self, worker: int) -> int:
        """OS pid of one worker process (fault-injection tests)."""
        return self._workers[worker].pid

    # -- pipelined command interface ---------------------------------------

    def create(self, worker: int, name: str, factory: Callable,
               *args: Any, **kwargs: Any) -> None:
        """Build ``factory(*args, **kwargs)`` as actor ``name`` (pipelined)."""
        self._send(worker, ("create", name, factory, args, kwargs))

    def call(self, worker: int, name: str, method: str,
             *args: Any, **kwargs: Any) -> None:
        """Invoke ``name.method(*args, **kwargs)`` in ``worker`` (pipelined)."""
        self._send(worker, ("call", name, method, args, kwargs))

    def result(self, worker: int) -> Any:
        """Collect the oldest outstanding reply from ``worker``.

        Raises :class:`WorkerError` when the remote command failed, or
        (with ``died=True``, after respawning the slot) when the worker
        process vanished before answering.
        """
        if self._inflight[worker] <= 0:
            raise RuntimeError(f"no outstanding command on worker {worker}")
        try:
            status, value = self._conns[worker].recv()
        except (EOFError, ConnectionResetError, OSError):
            raise self._respawn_dead(worker, "mid-command") from None
        self._inflight[worker] -= 1
        if status == "err":
            raise WorkerError(worker, value)
        return value

    def call_sync(self, worker: int, name: str, method: str,
                  *args: Any, **kwargs: Any) -> Any:
        """Convenience: :meth:`call` then :meth:`result` immediately."""
        self.call(worker, name, method, *args, **kwargs)
        return self.result(worker)

    def _send(self, worker: int, command: tuple) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")
        try:
            self._conns[worker].send(command)
        except (BrokenPipeError, ConnectionResetError, OSError):
            raise self._respawn_dead(worker, "before the command was sent") \
                from None
        self._inflight[worker] += 1

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop every worker, drain outstanding replies and join."""
        if self._closed:
            return
        self._closed = True
        for worker, conn in enumerate(self._conns):
            try:
                # Drain replies the caller abandoned (e.g. on error).
                while self._inflight[worker] > 0:
                    conn.recv()
                    self._inflight[worker] -= 1
                conn.send(("stop",))
                conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                pass
            finally:
                conn.close()
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Content-addressed on-disk result cache for experiments and sweeps.

A cache entry is addressed by the SHA-256 of ``(experiment id,
canonicalised params, package version)``:

* **experiment id** — the registry id (``"v1"``) or an explicit
  ``cache_id`` for sweep grids;
* **canonicalised params** — the parameter payload rendered as JSON with
  sorted keys, so two dicts that differ only in insertion order map to
  the same key, while any change of value (or of the base
  parameterisation) changes the key;
* **package version** — ``repro.__version__``, so a version bump
  invalidates every entry without touching the directory.

Values are stored with :mod:`pickle` (records carry numpy arrays and
:class:`~repro.experiments.base.ExperimentResult` objects) under
``<dir>/<experiment id>/<key>.pkl``, written atomically.  A corrupted or
unreadable entry is treated as a miss — the file is removed and the
caller recomputes; the cache never raises on load.

Concurrent writers
------------------
The directory may be shared by many processes (the job server, several
CLI runs, pool workers).  Two mechanisms keep that safe:

* **atomic stores** — :meth:`ResultCache.put` writes to a same-directory
  temp file and ``os.replace``\\ s it over the entry, so readers only
  ever see absent or complete pickles, and the last concurrent writer
  of the *same* key wins with an identical value (keys are
  content-addressed, so racing writers computed the same thing);
* **in-flight claims** — :meth:`ResultCache.try_claim` hard-links a
  fully-written ``<key>.claim`` file into place (link fails when one
  exists, like ``O_EXCL``) so cooperating processes can
  elect one computer per key instead of duplicating work.  A claim
  whose owner pid is dead is stolen (best effort) so a crashed worker
  cannot wedge a key forever.  Claims are an *advisory* dedup
  optimisation: correctness never depends on holding one, because
  stores stay atomic and idempotent regardless.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = ["CacheStats", "ResultCache", "canonical_key", "canonicalize"]

_MISS = object()


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-stable primitives (sorted, order-free).

    Dataclasses become field dicts, mappings get sorted keys, and
    tuples/sets become lists (sets sorted by their repr to fix an
    order).  Anything not JSON-serialisable falls back to ``repr``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonicalize(v) for v in value), key=repr)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; json would too, but NaN/inf
        # are not valid JSON, so normalise through repr (coerced, so
        # numpy float subclasses hash identically to Python floats).
        return repr(float(value))
    if hasattr(value, "item") and callable(value.item):  # numpy scalars
        return canonicalize(value.item())
    return repr(value)


def canonical_key(experiment_id: str, params: Any, version: str) -> str:
    """Hex digest addressing one ``(id, params, version)`` result."""
    payload = json.dumps(
        {"id": experiment_id, "params": canonicalize(params), "version": version},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits "
            f"({100.0 * self.hit_rate:.0f}%), {self.stores} stored"
            + (f", {self.corrupt} corrupt dropped" if self.corrupt else "")
        )


@dataclass
class ResultCache:
    """Content-addressed pickle cache rooted at ``directory``.

    Parameters
    ----------
    directory:
        Root of the cache tree; created on first store.
    version:
        Version string mixed into every key; defaults to
        ``repro.__version__`` so upgrading the package invalidates old
        entries.
    """

    directory: Path
    version: str | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if self.version is None:
            from .. import __version__

            self.version = __version__

    # -- addressing ---------------------------------------------------------

    def key(self, experiment_id: str, params: Any) -> str:
        """Content address of ``(experiment_id, params)`` at this version."""
        return canonical_key(experiment_id, params, self.version)

    def path(self, experiment_id: str, params: Any) -> Path:
        """On-disk location of the entry (which may not exist)."""
        return self.directory / experiment_id / f"{self.key(experiment_id, params)}.pkl"

    # -- lookup / store -----------------------------------------------------

    def get(self, experiment_id: str, params: Any, default: Any = None) -> Any:
        """Cached value, or ``default`` on a miss.

        A corrupted entry (truncated pickle, wrong permissions, …) is
        dropped and counted as a miss; the cache never raises here.
        """
        path = self.path(experiment_id, params)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except Exception:
            self.stats.misses += 1
            self.stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return default
        self.stats.hits += 1
        return value

    def contains(self, experiment_id: str, params: Any) -> bool:
        """Whether a (possibly corrupt) entry exists; no stats update."""
        return self.path(experiment_id, params).exists()

    def put(self, experiment_id: str, params: Any, value: Any) -> Path:
        """Store ``value`` atomically; returns the entry path."""
        path = self.path(experiment_id, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # -- in-flight claims ---------------------------------------------------

    def claim_path(self, experiment_id: str, params: Any) -> Path:
        """On-disk location of the entry's in-flight claim marker."""
        return self.path(experiment_id, params).with_suffix(".claim")

    def try_claim(self, experiment_id: str, params: Any) -> bool:
        """Attempt to claim the in-flight computation of one entry.

        Returns True when this process now owns the claim (and must
        :meth:`release_claim` or :meth:`put` eventually); False when a
        *live* process already holds it.  A claim left behind by a dead
        process is stolen.  The claim file records the owner pid and is
        hard-linked into place fully written, so a racing claimant
        never observes a pid-less claim it would mistake for stale.
        """
        path = self.claim_path(experiment_id, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".claimtmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            for attempt in range(2):
                try:
                    os.link(tmp, path)
                except FileExistsError:
                    if attempt or self._claim_owner_alive(path):
                        return False
                    # Stale claim: owner is gone.  Unlink and retry
                    # once — two stealers racing over a *pre-existing*
                    # stale claim can still both pass this point, but
                    # then one loses the link race above, which is the
                    # honest outcome (claims are advisory dedup).
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    continue
                return True
            return False  # pragma: no cover - both attempts lost the race
        finally:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - cleanup best effort
                pass

    def release_claim(self, experiment_id: str, params: Any) -> None:
        """Drop the entry's claim marker (no-op when absent)."""
        try:
            self.claim_path(experiment_id, params).unlink()
        except OSError:
            pass

    def claimed(self, experiment_id: str, params: Any) -> bool:
        """Whether a (possibly stale) claim marker exists."""
        return self.claim_path(experiment_id, params).exists()

    @contextlib.contextmanager
    def claim(self, experiment_id: str, params: Any):
        """Context manager: yields True when this process won the claim.

        The claim (when won) is released on exit, including on error —
        callers typically :meth:`put` the computed value first, so the
        entry exists by the time the marker disappears.
        """
        owned = self.try_claim(experiment_id, params)
        try:
            yield owned
        finally:
            if owned:
                self.release_claim(experiment_id, params)

    @staticmethod
    def _claim_owner_alive(path: Path) -> bool:
        """Best-effort liveness probe of the pid recorded in a claim."""
        try:
            pid = int(path.read_text().strip())
        except (OSError, ValueError):
            return False
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - foreign-uid owner
            return True
        return True

    # -- maintenance --------------------------------------------------------

    def _entries(self, experiment_id: str | None = None) -> Iterator[Path]:
        root = self.directory if experiment_id is None else self.directory / experiment_id
        if not root.is_dir():
            return iter(())
        return root.rglob("*.pkl")

    def invalidate(self, experiment_id: str | None = None) -> int:
        """Remove entries for one experiment (or all); returns the count."""
        removed = 0
        for path in list(self._entries(experiment_id)):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def size(self, experiment_id: str | None = None) -> int:
        """Number of entries on disk (all experiments by default)."""
        return sum(1 for _ in self._entries(experiment_id))

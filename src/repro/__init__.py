"""repro — Phase-plane analysis of BCN congestion control in DCE networks.

A full reproduction of Ren & Jiang, "Phase Plane Analysis of Congestion
Control in Data Center Ethernet Networks" (ICDCS 2010): the fluid-flow
model of the BCN mechanism, the strong-stability theory (Definition 1,
Propositions 2-4, Theorem 1), the six-case phase-plane taxonomy, the
limit-cycle return map — plus the substrates needed to exercise it all:
a packet-level DCE simulator, data-center topologies, workload
generators and the contemporaneous baseline schemes (QCN, E2CM, FERA).

Quickstart
----------
>>> from repro import paper_example_params, strong_stability_report
>>> report = strong_stability_report(paper_example_params())
>>> report.theorem1_buffer / 1e6  # Mbit, the paper reports ~13.75
13.8...
"""

from .core import (
    PAPER_EXAMPLE,
    BCNParams,
    LimitCycle,
    NormalizedParams,
    PaperCase,
    PhasePlaneAnalyzer,
    PiecewiseTrajectory,
    StabilityReport,
    classify_case,
    find_limit_cycle,
    is_strongly_stable,
    max_queue_bound,
    paper_example_params,
    required_buffer,
    strong_stability_report,
    theorem1_criterion,
)
from .fluid import FluidTrajectory, simulate_fluid

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BCNParams",
    "NormalizedParams",
    "PAPER_EXAMPLE",
    "paper_example_params",
    "PaperCase",
    "classify_case",
    "PhasePlaneAnalyzer",
    "PiecewiseTrajectory",
    "StabilityReport",
    "strong_stability_report",
    "is_strongly_stable",
    "theorem1_criterion",
    "required_buffer",
    "max_queue_bound",
    "LimitCycle",
    "find_limit_cycle",
    "FluidTrajectory",
    "simulate_fluid",
]

"""Switching-line geometry of the variable-structure BCN system.

The feedback measure ``sigma = -(x + k y)`` changes sign across the
**switching line** ``x + k y = 0`` (slope ``-1/k`` in the phase plane).
``sigma > 0`` selects the additive-increase law and ``sigma < 0`` the
multiplicative-decrease law (eq. 8).  This module provides the small
geometric vocabulary the composer and the classifiers share: region
membership, signed distance, crossing direction, and the projection of
states onto the line.

A structural property worth recording (used by the stability proof):
*crossings are always transversal*.  On the line, both vector fields give
``d(x + k y)/dt = y`` — the rate terms vanish because they are
proportional to ``x + k y`` itself — so there is no sliding mode, and a
trajectory can only touch the line without crossing at ``y = 0``, i.e. at
the origin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .eigen import Region

__all__ = ["SwitchingLine"]


@dataclass(frozen=True)
class SwitchingLine:
    """The line ``x + k y = 0`` with the induced region partition."""

    k: float

    def __post_init__(self) -> None:
        if not (self.k > 0 and math.isfinite(self.k)):
            raise ValueError(f"k must be positive and finite, got {self.k}")

    def sigma(self, x: float, y: float) -> float:
        """Feedback measure ``sigma = -(x + k y)``."""
        return -(x + self.k * y)

    def value(self, x: float, y: float) -> float:
        """The switching function ``s = x + k y`` (``-sigma``)."""
        return x + self.k * y

    def region(self, x: float, y: float, *, tol: float = 0.0) -> Region | None:
        """Region containing ``(x, y)``; None when within ``tol`` of the line."""
        s = self.value(x, y)
        if abs(s) <= tol:
            return None
        return Region.INCREASE if s < 0.0 else Region.DECREASE

    def region_or_heading(self, x: float, y: float, *, tol: float | None = None) -> Region:
        """Region of ``(x, y)``, resolving near-line points by flow direction.

        On the line ``d(x + k y)/dt = y`` for both fields, so a point with
        ``y < 0`` is about to enter the increase region and ``y > 0`` the
        decrease region.  ``y = 0`` on the line is the origin; we return
        the increase region by convention (the equilibrium belongs to the
        closure of both).

        ``tol`` defaults to a relative tolerance,
        ``1e-9 * (|x| + k |y|)``, so that states produced by a crossing
        solver (on the line up to FP error) are resolved by heading
        rather than by the noise sign of the residual.
        """
        if tol is None:
            tol = 1e-9 * (abs(x) + self.k * abs(y))
        region = self.region(x, y, tol=tol)
        if region is not None:
            return region
        return Region.DECREASE if y > 0.0 else Region.INCREASE

    def distance(self, x: float, y: float) -> float:
        """Euclidean distance from ``(x, y)`` to the line."""
        return abs(self.value(x, y)) / math.hypot(1.0, self.k)

    def slope(self) -> float:
        """Slope ``dy/dx = -1/k`` of the line in the phase plane."""
        return -1.0 / self.k

    def point_at_y(self, y: float) -> tuple[float, float]:
        """The point on the line with ordinate ``y`` (i.e. ``(-k y, y)``)."""
        return (-self.k * y, y)

    def point_at_x(self, x: float) -> tuple[float, float]:
        """The point on the line with abscissa ``x`` (i.e. ``(x, -x/k)``)."""
        return (x, -x / self.k)

    def project(self, x: float, y: float) -> tuple[float, float]:
        """Orthogonal projection of ``(x, y)`` onto the line."""
        s = self.value(x, y) / (1.0 + self.k * self.k)
        return (x - s, y - self.k * s)

    def crossing_direction(self, y: float) -> Region:
        """Region entered when crossing the line at ordinate ``y``.

        Follows from ``d(x + k y)/dt = y`` on the line: with ``y > 0``
        the switching function grows, so the flow enters the decrease
        region; with ``y < 0`` it enters the increase region.
        """
        if y == 0.0:
            raise ValueError("crossing direction undefined at the origin")
        return Region.DECREASE if y > 0.0 else Region.INCREASE

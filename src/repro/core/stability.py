"""Strong stability of the BCN system (Definition 1, Props. 2-4, Theorem 1).

The paper's **strong stability** (Definition 1) strengthens Lyapunov
stability to respect the physical buffer: there must exist ``t0`` such
that ``0 < q(t) < B`` for all ``t > t0``.  A trajectory that converges
to the equilibrium but transiently overflows the buffer (dropping
packets) or empties the queue (wasting the link) is *not* strongly
stable, even though classical linear analysis calls it stable
(Proposition 1).

This module implements:

* the paper-form first-round excursion bounds ``max1``/``min1`` (Case 1,
  eqs. 36-37) and ``max2`` (Case 2, eq. 38);
* Propositions 2-4, the per-case strong-stability conditions;
* **Theorem 1**, the closed-form sufficient criterion
  ``(1 + sqrt(Ru Gi N / (Gd C))) q0 < B``;
* :func:`strong_stability_report`, which combines the analytic criterion
  with an exact composed-trajectory verdict, and
* :func:`required_buffer` / :func:`max_queue_bound`, the buffer-sizing
  guidance of the Section IV Remarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .parameters import BCNParams, NormalizedParams
from .phase_plane import PaperCase, PhasePlaneAnalyzer, classify_case

__all__ = [
    "case1_excursion_bounds",
    "case2_peak_bound",
    "proposition2_holds",
    "proposition3_holds",
    "proposition4_applies",
    "theorem1_criterion",
    "required_buffer",
    "max_queue_bound",
    "StabilityReport",
    "strong_stability_report",
    "is_strongly_stable",
]


def _as_normalized(params: NormalizedParams | BCNParams) -> NormalizedParams:
    return params.normalized() if isinstance(params, BCNParams) else params


# ---------------------------------------------------------------------------
# Paper-form excursion bounds
# ---------------------------------------------------------------------------

def case1_excursion_bounds(params: NormalizedParams | BCNParams) -> tuple[float, float]:
    """First-round queue excursions ``(max1, min1)`` of Case 1 (eqs. 36-37).

    Follows the paper's chain of closed forms exactly: the first increase
    spiral from ``(-q0, 0)`` up to the switching line (amplitude ``A_i^1``,
    phase ``phi_i^1``, transit time ``T_i^1``), the crossing point
    ``x_d^1(0)``, the first decrease spiral's peak (eq. 36), the
    half-turn decrease transit ``T_d^1 = pi / beta_d``, the re-entry point
    ``x_i^2(0)`` and the second increase spiral's trough (eq. 37).

    Returns
    -------
    (max1, min1):
        Peak and trough of the normalised queue offset ``x = q - q0``
        over the first oscillation round.  Proposition 2 requires
        ``max1 < B - q0`` and ``min1 > -q0``.

    Raises
    ------
    ValueError
        If the parameters are not in Case 1 (both regions spiral).
    """
    p = _as_normalized(params)
    if classify_case(p) is not PaperCase.CASE1:
        raise ValueError("case1_excursion_bounds requires Case 1 parameters")
    a, b, c, k, q0 = p.a, p.b, p.capacity, p.k, p.q0

    # Increase-region spiral constants.
    root_i = math.sqrt(4.0 * a - a * a * k * k)  # 2 * beta_i
    alpha_i, beta_i = -a * k / 2.0, root_i / 2.0
    amp_i1 = 2.0 * q0 * math.sqrt(a) / root_i
    phi_i1 = -math.atan(a * k / root_i)
    t_i1 = (2.0 / root_i) * (math.atan((2.0 - a * k * k) / (k * root_i)) - phi_i1)
    x_d1 = -k * amp_i1 * (root_i / 2.0) * math.exp(-a * k * t_i1 / 2.0)

    # Decrease-region spiral constants.
    root_d = math.sqrt(4.0 * b * c - (k * b * c) ** 2)  # 2 * beta_d
    alpha_d, beta_d = -b * k * c / 2.0, root_d / 2.0
    phi_d1 = math.atan((2.0 - b * k * k * c) / (k * root_d))
    ratio_d = alpha_d / beta_d
    max1 = (abs(x_d1) / (k * math.sqrt(b * c))) * math.exp(
        ratio_d * (math.pi + math.atan(ratio_d) - phi_d1)
    )

    # Half-turn through the decrease region, then the second increase round.
    t_d1 = 2.0 * math.pi / root_d
    amp_d1 = 2.0 * abs(-x_d1 / k) / root_d
    x_i2 = -amp_d1 * (k * root_d / 2.0) * math.exp(-b * k * c * t_d1 / 2.0)
    phi_i2 = math.atan((2.0 - a * k * k) / (k * root_i))
    ratio_i = alpha_i / beta_i
    min1 = -(abs(x_i2) / (k * math.sqrt(a))) * math.exp(
        ratio_i * (math.pi + math.atan(ratio_i) - phi_i2)
    )
    return max1, min1


def case2_peak_bound(params: NormalizedParams | BCNParams) -> float:
    """Case 2 queue peak ``max2`` (eq. 38).

    In Case 2 the increase region is a node: the trajectory from
    ``(-q0, 0)`` follows a parabola-like curve to the switching line,
    crossing it at ordinate ``y_d^1(0) = q0 [ (k + 1/lambda_1)^{lambda_1}
    / (k + 1/lambda_2)^{lambda_2} ]^{1/(lambda_2 - lambda_1)}`` (from
    eq. 26), then spirals once through the decrease region; eq. (38)
    gives the resulting peak.
    """
    p = _as_normalized(params)
    if classify_case(p) is not PaperCase.CASE2:
        raise ValueError("case2_peak_bound requires Case 2 parameters")
    a, b, c, k, q0 = p.a, p.b, p.capacity, p.k, p.q0

    disc = a * a * k * k - 4.0 * a
    lam1 = (-k * a - math.sqrt(disc)) / 2.0
    lam2 = (-k * a + math.sqrt(disc)) / 2.0
    # k + 1/lambda_i in (0, k) since lambda_i < -1/k; safe for log-powers.
    log_ratio = (
        lam1 * math.log(k + 1.0 / lam1) - lam2 * math.log(k + 1.0 / lam2)
    ) / (lam2 - lam1)
    y_d1 = q0 * math.exp(log_ratio)

    root_d = math.sqrt(4.0 * b * c - (k * b * c) ** 2)
    alpha_d, beta_d = -b * k * c / 2.0, root_d / 2.0
    phi_d1 = math.atan((2.0 - b * k * k * c) / (k * root_d))
    ratio_d = alpha_d / beta_d
    # max2 = y_d1 / sqrt(bC) * exp(...): eq. (38) written with the crossing
    # ordinate; |x_d1| = k * y_d1 and |x_d1|/(k sqrt(bC)) = y_d1/sqrt(bC).
    return (y_d1 / math.sqrt(b * c)) * math.exp(
        ratio_d * (math.pi + math.atan(ratio_d) - phi_d1)
    )


# ---------------------------------------------------------------------------
# Propositions and Theorem 1
# ---------------------------------------------------------------------------

def proposition2_holds(params: NormalizedParams | BCNParams) -> bool:
    """Proposition 2: Case-1 strong stability via the eq. 36/37 bounds."""
    p = _as_normalized(params)
    max1, min1 = case1_excursion_bounds(p)
    return max1 < p.buffer_size - p.q0 and min1 > -p.q0


def proposition3_holds(params: NormalizedParams | BCNParams) -> bool:
    """Proposition 3: Case-2 strong stability via the eq. 38 bound.

    (The paper's statement of Proposition 3 repeats Case 1's inequality
    signs by typographical error; the proof and Fig. 8 make clear it
    covers Case 2, ``a > 4 pm^2 C^2 / w^2`` and ``b < 4 pm^2 C / w^2``.)
    """
    p = _as_normalized(params)
    return case2_peak_bound(p) < p.buffer_size - p.q0


def proposition4_applies(params: NormalizedParams | BCNParams) -> bool:
    """Proposition 4: Cases 3-5 (``b C >= 4/k^2`` or ``a = 4/k^2``).

    In these cases the decrease region is a node (or the switching line
    itself is invariant), the trajectory never overshoots ``q0`` after
    its first crossing, and the system is strongly stable for any buffer
    ``B > q0``.
    """
    p = _as_normalized(params)
    thr = p.focus_threshold
    return p.n_decrease >= thr or p.n_increase == thr


def theorem1_criterion(params: NormalizedParams | BCNParams) -> bool:
    """Theorem 1: sufficient condition for strong stability.

    ``(1 + sqrt(a / (b C))) q0 < B`` — in physical parameters,
    ``(1 + sqrt(Ru Gi N / (Gd C))) q0 < B``.
    """
    p = _as_normalized(params)
    return required_buffer(p) < p.buffer_size


def required_buffer(params: NormalizedParams | BCNParams) -> float:
    """Buffer size Theorem 1 deems sufficient: ``(1 + sqrt(a/(bC))) q0``.

    For the paper's worked example (N=50, C=10 Gbit/s, q0=2.5 Mbit,
    Gi=4, Gd=1/128, Ru=8 Mbit/s) this evaluates to about 13.8 Mbit,
    nearly three times the 5 Mbit bandwidth-delay product.
    """
    p = _as_normalized(params)
    return (1.0 + math.sqrt(p.a / (p.b * p.capacity))) * p.q0


def max_queue_bound(params: NormalizedParams | BCNParams) -> float:
    """Theorem 1's bound on the peak queue: ``q0 (1 + sqrt(a/(bC)))``.

    The proof shows every case's transient peak obeys
    ``max q(t) - q0 < sqrt(a/(bC)) q0``, so the peak queue is below this
    value; it scales with ``sqrt(N/C)`` and is independent of ``w`` and
    ``pm`` (which only shape transients such as limit cycles).
    """
    return required_buffer(params)


# ---------------------------------------------------------------------------
# Combined report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StabilityReport:
    """Analytic + trajectory-level strong-stability assessment.

    Attributes
    ----------
    case:
        The paper's case classification.
    strongly_stable:
        Verdict from the exact composed trajectory (Definition 1): the
        queue neither overflows nor re-empties after the start.
    theorem1_satisfied:
        Whether Theorem 1's sufficient criterion holds.
    theorem1_buffer:
        Buffer size Theorem 1 requires, ``(1 + sqrt(a/(bC))) q0``.
    proposition:
        Which proposition governs this case (2, 3 or 4).
    proposition_holds:
        Whether the governing proposition's bound condition is met.
    queue_peak, queue_trough:
        Exact peak / trough of ``q(t)`` along the composed trajectory.
    bound_peak:
        The paper-form analytic peak bound for this case (eq. 36 or 38;
        ``q0`` offset included), or None for Cases 3-5.
    limit_cycle_suspected:
        True when the composed trajectory neither converged nor diverged
        within the switching budget (Case 1 only).
    """

    case: PaperCase
    strongly_stable: bool
    theorem1_satisfied: bool
    theorem1_buffer: float
    proposition: int
    proposition_holds: bool
    queue_peak: float
    queue_trough: float
    bound_peak: float | None
    limit_cycle_suspected: bool

    @property
    def consistent(self) -> bool:
        """Theorem 1 must never pass on a non-strongly-stable system."""
        return not self.theorem1_satisfied or self.strongly_stable


def strong_stability_report(
    params: NormalizedParams | BCNParams,
    *,
    max_switches: int = 400,
) -> StabilityReport:
    """Assess strong stability analytically and by exact composition."""
    p = _as_normalized(params)
    case = classify_case(p)
    analyzer = PhasePlaneAnalyzer(p)
    traj = analyzer.compose(max_switches=max_switches)

    overflow = traj.overflows()
    underflow = traj.underflows_after_start()
    converging = traj.converged
    limit_cycle = False
    if not converging and traj.end_reason == "max_switches":
        # The switching budget ran out before the convergence ball was
        # reached.  The amplitude trend settles it: a geometric ratio
        # below 1 means the oscillation contracts (eventual convergence,
        # just slow — common for the paper's gentle gains); a ratio of 1
        # is a limit cycle; above 1, divergence.
        trend = traj.amplitude_trend()
        if trend is not None and trend < 1.0 - 1e-9:
            converging = True
        else:
            limit_cycle = trend is not None and abs(trend - 1.0) <= 1e-9
    strongly_stable = converging and not overflow and not underflow

    if case is PaperCase.CASE1:
        proposition = 2
        max1, _min1 = case1_excursion_bounds(p)
        bound_peak: float | None = p.q0 + max1
        prop_holds = proposition2_holds(p)
    elif case is PaperCase.CASE2:
        proposition = 3
        bound_peak = p.q0 + case2_peak_bound(p)
        prop_holds = proposition3_holds(p)
    else:
        proposition = 4
        bound_peak = None
        prop_holds = proposition4_applies(p)

    return StabilityReport(
        case=case,
        strongly_stable=strongly_stable,
        theorem1_satisfied=theorem1_criterion(p),
        theorem1_buffer=required_buffer(p),
        proposition=proposition,
        proposition_holds=prop_holds,
        queue_peak=traj.queue_peak(),
        queue_trough=traj.queue_trough_after_start(),
        bound_peak=bound_peak,
        limit_cycle_suspected=limit_cycle,
    )


def is_strongly_stable(
    params: NormalizedParams | BCNParams, *, max_switches: int = 400
) -> bool:
    """Exact Definition-1 verdict from the composed trajectory."""
    return strong_stability_report(params, max_switches=max_switches).strongly_stable

"""Parameter-space maps: the case taxonomy as a phase diagram.

Section IV.C's six cases partition the ``(a, bC)`` plane by the single
threshold ``4/k^2``; this module renders that partition as data — a
classification grid plus the analytic boundary curves — together with
quantitative overlays (per-round contraction, overshoot ratio, required
buffer), the "bifurcation diagram" view of the whole analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .limit_cycle import linearized_contraction
from .parameters import NormalizedParams
from .phase_plane import PaperCase, classify_case
from .stability import required_buffer
from .transient import overshoot_ratio

__all__ = ["CaseMap", "case_map", "case_boundaries"]

_CASE_CODE = {
    PaperCase.CASE1: 1,
    PaperCase.CASE2: 2,
    PaperCase.CASE3: 3,
    PaperCase.CASE4: 4,
    PaperCase.CASE5: 5,
}


@dataclass
class CaseMap:
    """Classification (and overlays) over an ``(a, b)`` grid.

    Attributes
    ----------
    a_values, b_values:
        Grid axes.
    case_codes:
        Integer case ids, shape ``(len(b_values), len(a_values))``.
    contraction:
        Per-round contraction where Case 1 applies, NaN elsewhere.
    overshoot:
        Overshoot ratio (eq. 36/38 based), 0 in the node cases.
    buffer_ratio:
        ``required_buffer / q0`` — Theorem 1 as a surface.
    """

    k: float
    capacity: float
    q0: float
    a_values: np.ndarray
    b_values: np.ndarray
    case_codes: np.ndarray
    contraction: np.ndarray
    overshoot: np.ndarray
    buffer_ratio: np.ndarray

    def fraction_in_case(self, case: PaperCase) -> float:
        """Fraction of grid points classified as ``case``."""
        return float(np.mean(self.case_codes == _CASE_CODE[case]))

    def to_ascii(self, *, title: str | None = None) -> str:
        """Render the case partition as a character raster."""
        lines = [title] if title else []
        lines.append("   a ->  (rows: b, bottom-up)")
        for i in range(self.case_codes.shape[0] - 1, -1, -1):
            row = "".join(str(int(c)) for c in self.case_codes[i])
            lines.append(f"b={self.b_values[i]:<9.3g} {row}")
        return "\n".join(lines)


def case_boundaries(k: float, capacity: float) -> dict[str, float]:
    """The analytic thresholds splitting the plane (Section IV.C).

    ``a* = 4/k^2`` (increase focus/node boundary) and
    ``b* = 4/(k^2 C)`` (decrease boundary).
    """
    if k <= 0 or capacity <= 0:
        raise ValueError("k and capacity must be positive")
    return {"a_star": 4.0 / (k * k), "b_star": 4.0 / (k * k * capacity)}


def case_map(
    a_values: np.ndarray,
    b_values: np.ndarray,
    *,
    k: float = 1.0,
    capacity: float = 100.0,
    q0: float = 10.0,
) -> CaseMap:
    """Classify and measure every point of an ``(a, b)`` grid."""
    a_values = np.asarray(a_values, float)
    b_values = np.asarray(b_values, float)
    shape = (b_values.size, a_values.size)
    codes = np.zeros(shape, dtype=int)
    contraction = np.full(shape, np.nan)
    overshoot = np.zeros(shape)
    buffer_ratio = np.zeros(shape)
    for i, b in enumerate(b_values):
        for j, a in enumerate(a_values):
            p = NormalizedParams(a=float(a), b=float(b), k=k,
                                 capacity=capacity, q0=q0, buffer_size=1e12)
            case = classify_case(p)
            codes[i, j] = _CASE_CODE[case]
            if case is PaperCase.CASE1:
                contraction[i, j] = linearized_contraction(p)
            overshoot[i, j] = overshoot_ratio(p)
            buffer_ratio[i, j] = required_buffer(p) / q0
    return CaseMap(
        k=k,
        capacity=capacity,
        q0=q0,
        a_values=a_values,
        b_values=b_values,
        case_codes=codes,
        contraction=contraction,
        overshoot=overshoot,
        buffer_ratio=buffer_ratio,
    )

"""Core contribution: phase-plane analysis of BCN congestion control.

This package implements the analytical machinery of the paper:
parameterisation (:mod:`.parameters`), eigenstructure classification
(:mod:`.eigen`), closed-form trajectories (:mod:`.trajectories`), the
extremum formulas (:mod:`.extrema`), switching-line geometry
(:mod:`.switching`), piecewise trajectory composition and the six-case
taxonomy (:mod:`.phase_plane`), strong-stability theory — Propositions
2-4 and Theorem 1 (:mod:`.stability`) — and limit-cycle analysis via a
Poincaré return map (:mod:`.limit_cycle`).
"""

from .eigen import (
    Eigenstructure,
    FixedPointType,
    Region,
    characteristic_coefficients,
    eigenstructure,
    region_eigenstructure,
)
from .extrema import (
    extremum_time,
    extremum_x,
    spiral_amplitude,
    spiral_extremum_paper,
    spiral_t_star,
)
from .limit_cycle import (
    LimitCycle,
    amplitude_scan,
    contraction_ratio,
    find_limit_cycle,
    linearized_contraction,
    return_map,
)
from .parameters import (
    PAPER_EXAMPLE,
    BCNParams,
    NormalizedParams,
    paper_example_params,
)
from .phase_plane import (
    PaperCase,
    PhasePlaneAnalyzer,
    PiecewiseTrajectory,
    Segment,
    WarmupSegment,
    classify_case,
)
from .stability import (
    StabilityReport,
    case1_excursion_bounds,
    case2_peak_bound,
    is_strongly_stable,
    max_queue_bound,
    proposition2_holds,
    proposition3_holds,
    proposition4_applies,
    required_buffer,
    strong_stability_report,
    theorem1_criterion,
)
from .transient import (
    TransientReport,
    overshoot_ratio,
    round_period,
    settling_rounds,
    settling_time,
    transient_report,
)
from .case_map import CaseMap, case_boundaries, case_map
from .phase_portrait import (
    PhasePortrait,
    VectorFieldGrid,
    phase_portrait,
    vector_field_grid,
)
from .lyapunov import (
    crossing_energy_ratio,
    decrease_energy,
    decrease_energy_rate,
    energy_along,
    increase_energy,
    increase_energy_rate,
)
from .design import (
    DesignCheck,
    design_report,
    design_w,
    headroom_ratio,
    max_flows,
    max_gi,
    max_q0,
    min_buffer,
    min_gd,
)
from .switching import SwitchingLine
from .trajectories import (
    DegenerateTrajectory,
    LinearTrajectory,
    NodeTrajectory,
    SpiralTrajectory,
    linear_trajectory,
    trajectory_for,
)

__all__ = [
    "BCNParams",
    "NormalizedParams",
    "PAPER_EXAMPLE",
    "paper_example_params",
    "Region",
    "FixedPointType",
    "Eigenstructure",
    "eigenstructure",
    "region_eigenstructure",
    "characteristic_coefficients",
    "SwitchingLine",
    "LinearTrajectory",
    "SpiralTrajectory",
    "NodeTrajectory",
    "DegenerateTrajectory",
    "linear_trajectory",
    "trajectory_for",
    "extremum_x",
    "extremum_time",
    "spiral_t_star",
    "spiral_amplitude",
    "spiral_extremum_paper",
    "PaperCase",
    "classify_case",
    "PhasePlaneAnalyzer",
    "PiecewiseTrajectory",
    "Segment",
    "WarmupSegment",
    "StabilityReport",
    "strong_stability_report",
    "is_strongly_stable",
    "theorem1_criterion",
    "required_buffer",
    "max_queue_bound",
    "case1_excursion_bounds",
    "case2_peak_bound",
    "proposition2_holds",
    "proposition3_holds",
    "proposition4_applies",
    "LimitCycle",
    "find_limit_cycle",
    "return_map",
    "contraction_ratio",
    "amplitude_scan",
    "linearized_contraction",
    "TransientReport",
    "transient_report",
    "round_period",
    "settling_rounds",
    "settling_time",
    "overshoot_ratio",
    "DesignCheck",
    "design_report",
    "design_w",
    "headroom_ratio",
    "max_flows",
    "max_gi",
    "max_q0",
    "min_gd",
    "min_buffer",
    "increase_energy",
    "increase_energy_rate",
    "decrease_energy",
    "decrease_energy_rate",
    "energy_along",
    "crossing_energy_ratio",
    "PhasePortrait",
    "VectorFieldGrid",
    "phase_portrait",
    "vector_field_grid",
    "CaseMap",
    "case_map",
    "case_boundaries",
]

"""Phase-portrait construction: vector fields, nullclines, orbit grids.

The paper's figures are single trajectories; a full portrait — the
vector field with a family of orbits from a grid of starts — shows the
global structure at a glance (how every start funnels into the spiral
or onto the node asymptote, where the switching line bends the flow).
This module builds portraits as *data* (arrow grids and polyline
bundles) for the ASCII renderer, the CSV exporter, or any external
plotting environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fluid.batch import default_horizon, simulate_fluid_batch, switched_derivatives
from ..fluid.model import as_normalized
from .parameters import BCNParams, NormalizedParams
from .phase_plane import PhasePlaneAnalyzer

__all__ = ["VectorFieldGrid", "PhasePortrait", "vector_field_grid",
           "phase_portrait"]


@dataclass(frozen=True)
class VectorFieldGrid:
    """Sampled vector field: positions and (normalised) directions."""

    x: np.ndarray  #: shape (ny, nx)
    y: np.ndarray
    u: np.ndarray  #: dx/dt, normalised per-point
    v: np.ndarray  #: dy/dt, normalised per-point
    magnitude: np.ndarray  #: pre-normalisation speed

    @property
    def shape(self) -> tuple[int, int]:
        return self.x.shape


def vector_field_grid(
    params: NormalizedParams | BCNParams,
    *,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    nx: int = 24,
    ny: int = 18,
) -> VectorFieldGrid:
    """Sample the switched vector field over a rectangle.

    Directions are unit-normalised (the magnitudes are returned
    separately) so a quiver plot shows geometry rather than the huge
    dynamic range of speeds near/far from the switching line.  The
    whole ``ny x nx`` grid is evaluated in one batched call
    (:func:`repro.fluid.batch.switched_derivatives`).
    """
    p = as_normalized(params)
    xs = np.linspace(x_range[0], x_range[1], nx)
    ys = np.linspace(y_range[0], y_range[1], ny)
    gx, gy = np.meshgrid(xs, ys)
    derivs = switched_derivatives(
        p, np.stack([gx, gy], axis=-1), on_line="decrease"
    )
    u, v = derivs[..., 0], derivs[..., 1]
    magnitude = np.hypot(u, v)
    safe = np.where(magnitude > 0, magnitude, 1.0)
    return VectorFieldGrid(x=gx, y=gy, u=u / safe, v=v / safe,
                           magnitude=magnitude)


@dataclass
class PhasePortrait:
    """A family of composed orbits plus the field grid and landmarks."""

    params: NormalizedParams
    orbits: list[np.ndarray] = field(default_factory=list)  #: (n, 2) each
    grid: VectorFieldGrid | None = None

    @property
    def switching_slope(self) -> float:
        return -1.0 / self.params.k

    def bounding_box(self) -> tuple[float, float, float, float]:
        xs = np.concatenate([o[:, 0] for o in self.orbits])
        ys = np.concatenate([o[:, 1] for o in self.orbits])
        return float(xs.min()), float(xs.max()), float(ys.min()), float(ys.max())

    def to_ascii(self, *, width: int = 72, height: int = 24,
                 title: str | None = None) -> str:
        """Render the orbit bundle with the ASCII canvas."""
        from ..viz.ascii import AsciiCanvas

        x_lo, x_hi, y_lo, y_hi = self.bounding_box()
        pad_x = 0.05 * (x_hi - x_lo or 1.0)
        pad_y = 0.05 * (y_hi - y_lo or 1.0)
        canvas = AsciiCanvas(width, height,
                             x_range=(x_lo - pad_x, x_hi + pad_x),
                             y_range=(y_lo - pad_y, y_hi + pad_y))
        canvas.hline(0.0)
        canvas.vline(0.0)
        canvas.line(self.switching_slope, marker=":")
        for orbit, marker in zip(self.orbits, "*o+x#@%&"):
            canvas.plot(orbit[:, 0], orbit[:, 1], marker=marker)
        return canvas.render(title=title)

    def to_csv_columns(self) -> dict[str, np.ndarray]:
        """Flatten orbits into CSV-ready columns (nan-separated)."""
        cols: dict[str, np.ndarray] = {}
        for i, orbit in enumerate(self.orbits):
            cols[f"orbit{i}_x"] = orbit[:, 0]
            cols[f"orbit{i}_y"] = orbit[:, 1]
        return cols


def phase_portrait(
    params: NormalizedParams | BCNParams,
    *,
    starts: list[tuple[float, float]] | None = None,
    max_switches: int = 30,
    points_per_segment: int = 120,
    with_grid: bool = False,
    method: str = "compose",
    fluid_mode: str = "nonlinear",
    t_max: float | None = None,
) -> PhasePortrait:
    """Compose a family of orbits from a spread of initial states.

    ``starts`` defaults to eight points around the buffer strip: the
    canonical ``(-q0, 0)``, points on both axes and both regions.

    ``method`` selects the orbit engine: ``"compose"`` uses the
    closed-form piecewise composition (exact eigensolutions, the
    default), ``"batch"`` integrates the whole bundle in one
    :func:`repro.fluid.batch.simulate_fluid_batch` call — the fast path
    for large ensembles, which also unlocks ``fluid_mode`` (the
    nonlinear or physical laws the closed forms cannot express).
    """
    p = as_normalized(params)
    if starts is None:
        q0, c = p.q0, p.capacity
        starts = [
            (-q0, 0.0),
            (-0.5 * q0, 0.1 * c / 10.0),
            (0.5 * q0, 0.0),
            (0.0, 0.05 * c),
            (0.0, -0.05 * c),
            (0.8 * q0, 0.02 * c),
            (-0.8 * q0, -0.02 * c),
        ]
    portrait = PhasePortrait(params=p)
    if method == "batch":
        if t_max is None:
            t_max = default_horizon(p, max_switches=max_switches)
        result = simulate_fluid_batch(
            p,
            np.array([s[0] for s in starts]),
            np.array([s[1] for s in starts]),
            t_max=t_max,
            mode=fluid_mode,
            max_switches=max_switches,
        )
        for row in range(result.n_rows):
            mask = result.t <= result.t_end[row]
            portrait.orbits.append(
                np.column_stack([result.x[mask, row], result.y[mask, row]])
            )
    elif method == "compose":
        analyzer = PhasePlaneAnalyzer(p)
        for x0, y0 in starts:
            traj = analyzer.compose(x0, y0, max_switches=max_switches)
            samples = traj.sample(points_per_segment)
            portrait.orbits.append(samples[:, 1:3])
    else:
        raise ValueError(f"unknown portrait method {method!r}")
    if with_grid:
        x_lo, x_hi, y_lo, y_hi = portrait.bounding_box()
        portrait.grid = vector_field_grid(
            p, x_range=(x_lo, x_hi), y_range=(y_lo, y_hi))
    return portrait

"""Parameterisation of the BCN congestion-control system.

The paper works with two coordinate systems:

* **Physical** parameters, as configured on switches and rate regulators
  (:class:`BCNParams`): link capacity ``C``, flow count ``N``, reference
  queue ``q0``, buffer ``B``, severe-congestion threshold ``q_sc``, sampling
  probability ``p_m``, queue-derivative weight ``w``, AIMD gains ``Gi``,
  ``Gd`` and the rate unit ``Ru``.

* **Normalised** parameters used throughout the analysis
  (:class:`NormalizedParams`): with state ``x = q - q0`` and
  ``y = N*r - C`` the dynamics depend only on

  ==========  =======================  =============================
  symbol      definition               role
  ==========  =======================  =============================
  ``a``       ``Ru * Gi * N``          additive-increase strength
  ``b``       ``Gd``                   multiplicative-decrease gain
  ``k``       ``w / (p_m * C)``        switching-line slope (x = -k y)
  ==========  =======================  =============================

  (Section IV.A of the paper.)

Units
-----
The paper quotes capacities in bits per second and queues in bits; any
consistent unit system works.  The worked example in Section IV (Remarks)
uses ``C = 10 Gbit/s``, queue lengths in Mbit, so we default to bits and
seconds everywhere and provide :data:`PAPER_EXAMPLE` with exactly the
numbers of that example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any


__all__ = [
    "BCNParams",
    "NormalizedParams",
    "PAPER_EXAMPLE",
    "paper_example_params",
]


def _require_positive(name: str, value: float) -> None:
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")


@dataclass(frozen=True)
class BCNParams:
    """Physical configuration of a single-bottleneck BCN control loop.

    Parameters
    ----------
    capacity:
        Bottleneck link capacity ``C`` in bits/second.
    n_flows:
        Number ``N`` of homogeneous active flows sharing the bottleneck.
    q0:
        Reference (equilibrium) queue length in bits.
    buffer_size:
        Physical buffer size ``B`` in bits; the strong-stability definition
        requires ``0 < q(t) < B`` after a transient.
    w:
        Weight of the queue-length derivative term in the congestion
        measure ``sigma = (q0 - q) - w * dq``.
    pm:
        Deterministic sampling probability of incoming packets at the core
        switch (a packet is sampled once every ``1/pm`` packets on
        average).
    gi:
        Additive-increase gain ``Gi`` of the rate regulator.
    gd:
        Multiplicative-decrease gain ``Gd`` of the rate regulator.
    ru:
        Rate increase unit ``Ru`` (bits/second); a positive feedback
        ``sigma`` increases the rate by ``Gi * Ru * sigma``.
    q_sc:
        Severe-congestion threshold; above it the switch emits 802.3x
        PAUSE frames.  Defaults to the buffer size (PAUSE disabled in the
        fluid analysis, which matches the paper's model).
    initial_rate:
        Initial per-source sending rate ``mu`` (bits/second) used for the
        warm-up stage analysis (``T0 = (C - N*mu) / (a*q0)``).
    """

    capacity: float
    n_flows: int
    q0: float
    buffer_size: float
    w: float = 2.0
    pm: float = 0.01
    gi: float = 4.0
    gd: float = 1.0 / 128.0
    ru: float = 8e6
    q_sc: float | None = None
    initial_rate: float = 0.0

    def __post_init__(self) -> None:
        _require_positive("capacity", self.capacity)
        if self.n_flows < 1:
            raise ValueError(f"n_flows must be >= 1, got {self.n_flows}")
        _require_positive("q0", self.q0)
        _require_positive("buffer_size", self.buffer_size)
        _require_positive("w", self.w)
        if not 0 < self.pm <= 1:
            raise ValueError(f"pm must lie in (0, 1], got {self.pm}")
        _require_positive("gi", self.gi)
        _require_positive("gd", self.gd)
        _require_positive("ru", self.ru)
        if self.q0 >= self.buffer_size:
            raise ValueError(
                f"q0 ({self.q0}) must be below the buffer size ({self.buffer_size})"
            )
        if self.q_sc is not None and not self.q0 < self.q_sc <= self.buffer_size:
            raise ValueError(
                f"q_sc ({self.q_sc}) must lie in (q0, buffer_size]"
            )
        if self.initial_rate < 0:
            raise ValueError("initial_rate must be non-negative")
        if self.initial_rate * self.n_flows >= self.capacity:
            raise ValueError(
                "initial aggregate rate must be below capacity for the "
                "warm-up analysis to apply"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def severe_threshold(self) -> float:
        """Effective PAUSE threshold ``q_sc`` (buffer size when unset)."""
        return self.buffer_size if self.q_sc is None else self.q_sc

    @property
    def fair_rate(self) -> float:
        """Equilibrium per-source rate ``C / N``."""
        return self.capacity / self.n_flows

    def normalized(self) -> "NormalizedParams":
        """Return the normalised parameters ``(a, b, k)`` of Section IV.A."""
        return NormalizedParams(
            a=self.ru * self.gi * self.n_flows,
            b=self.gd,
            k=self.w / (self.pm * self.capacity),
            capacity=self.capacity,
            q0=self.q0,
            buffer_size=self.buffer_size,
        )

    def with_(self, **changes: Any) -> "BCNParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def warmup_duration(self) -> float:
        """Duration ``T0`` of the start-up stage.

        While the queue is empty the switch feeds back ``sigma = q0`` and
        the aggregate rate grows linearly at ``a * q0``; the queue starts
        to build once the aggregate rate reaches ``C``, after
        ``T0 = (C - N*mu) / (a * q0)`` seconds (Section IV.C).
        """
        a = self.ru * self.gi * self.n_flows
        return (self.capacity - self.n_flows * self.initial_rate) / (a * self.q0)


@dataclass(frozen=True)
class NormalizedParams:
    """Normalised BCN parameters and the derived analysis quantities.

    The dynamics of the normalised state ``(x, y)`` are (eq. 8)::

        dx/dt = y
        dy/dt = -a (x + k y)              in the rate-increase region
        dy/dt = -b (y + C) (x + k y)      in the rate-decrease region

    with the switching line ``x + k y = 0``.  The linearisation about the
    origin gives the shared characteristic equation ``lambda^2 +
    k n lambda + n = 0`` with ``n = a`` (increase) or ``n = b C``
    (decrease) — eq. (35).
    """

    a: float
    b: float
    k: float
    capacity: float
    q0: float
    buffer_size: float = field(default=math.inf)

    def __post_init__(self) -> None:
        _require_positive("a", self.a)
        _require_positive("b", self.b)
        _require_positive("k", self.k)
        _require_positive("capacity", self.capacity)
        _require_positive("q0", self.q0)
        if self.buffer_size <= self.q0:
            raise ValueError("buffer_size must exceed q0")

    # -- case thresholds ----------------------------------------------------
    #
    # The discriminant of eq. (35) is (k n)^2 - 4 n = n (k^2 n - 4), so a
    # region is a focus (spiral) iff n < 4 / k^2.  With k = w/(pm C) this is
    # exactly the paper's thresholds a ≶ 4 pm^2 C^2 / w^2 and
    # b ≶ 4 pm^2 C / w^2.

    @property
    def focus_threshold(self) -> float:
        """The value ``4 / k^2`` separating spiral from node behaviour."""
        return 4.0 / (self.k * self.k)

    @property
    def n_increase(self) -> float:
        """Characteristic-equation constant ``n1 = a`` (increase region)."""
        return self.a

    @property
    def n_decrease(self) -> float:
        """Characteristic-equation constant ``n2 = b C`` (decrease region)."""
        return self.b * self.capacity

    @property
    def increase_is_focus(self) -> bool:
        """Spiral behaviour in the rate-increase region (``a < 4/k^2``)."""
        return self.n_increase < self.focus_threshold

    @property
    def decrease_is_focus(self) -> bool:
        """Spiral behaviour in the rate-decrease region (``bC < 4/k^2``)."""
        return self.n_decrease < self.focus_threshold

    def sigma(self, x: float, y: float) -> float:
        """Feedback measure ``sigma = -(x + k y)`` at a normalised state."""
        return -(x + self.k * y)

    def with_(self, **changes: Any) -> "NormalizedParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_physical(
        self,
        *,
        n_flows: int = 1,
        w: float = 2.0,
        gi: float | None = None,
    ) -> BCNParams:
        """Recover one physical parameterisation realising these values.

        The map from physical to normalised parameters is many-to-one;
        this inverse fixes ``n_flows`` and ``w`` (and optionally ``Gi``)
        and solves for the remaining degrees of freedom:
        ``pm = w / (k C)``, ``Gd = b`` and ``Ru = a / (Gi N)``.
        """
        gi_val = 4.0 if gi is None else gi
        pm = w / (self.k * self.capacity)
        if not 0 < pm <= 1:
            raise ValueError(
                f"no valid sampling probability for w={w}: pm={pm}; "
                "pick a different w"
            )
        buffer_size = self.buffer_size
        if math.isinf(buffer_size):
            buffer_size = 4.0 * self.q0
        return BCNParams(
            capacity=self.capacity,
            n_flows=n_flows,
            q0=self.q0,
            buffer_size=buffer_size,
            w=w,
            pm=pm,
            gi=gi_val,
            gd=self.b,
            ru=self.a / (gi_val * n_flows),
        )


#: The worked example of Section IV (Remarks): 50 flows on a 10 Gbit/s link,
#: 100 m of fibre (0.5 us propagation delay, 5 Mbit bandwidth-delay
#: product), q0 = 2.5 Mbit and the standard-draft gains Gi = 4,
#: Gd = 1/128, Ru = 8 Mbit/s.  Theorem 1 then requires a buffer of about
#: 13.8 Mbit (the paper rounds to 13.75), nearly 3x the BDP.
PAPER_EXAMPLE = BCNParams(
    capacity=10e9,
    n_flows=50,
    q0=2.5e6,
    buffer_size=20e6,
    w=2.0,
    pm=0.01,
    gi=4.0,
    gd=1.0 / 128.0,
    ru=8e6,
)


def paper_example_params(**overrides: Any) -> BCNParams:
    """Return the Section IV worked-example parameters, with overrides."""
    return PAPER_EXAMPLE.with_(**overrides) if overrides else PAPER_EXAMPLE

"""Piecewise phase-plane composition of BCN trajectories (Section IV.C).

The BCN system is a *variable-structure* system: the phase plane is split
by the switching line ``x + k y = 0`` into a rate-increase and a
rate-decrease region, each with its own (linearised) dynamics.  A full
trajectory is a chain of closed-form segments, glued at switching-line
crossings.  This module provides:

* :func:`classify_case` — the paper's six basic trajectory types
  (Cases 1-5 of Section IV.C), decided by whether each region is a focus
  (spiral) or a node (parabola-like);
* :class:`PhasePlaneAnalyzer` — composes piecewise trajectories from any
  initial state, including the canonical start ``(-q0, 0)`` reached at
  the end of the warm-up stage, and reports switching points, per-round
  extrema, global queue excursions and strong-stability-relevant events;
* :class:`PiecewiseTrajectory` — the composed result, sampleable for
  plotting and inspection.

All coordinates are normalised: ``x = q - q0`` (queue offset, bits) and
``y = N r - C`` (aggregate rate offset, bits/s).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from .eigen import Region, region_eigenstructure
from .parameters import BCNParams, NormalizedParams
from .switching import SwitchingLine
from .trajectories import LinearTrajectory, linear_trajectory

__all__ = [
    "PaperCase",
    "classify_case",
    "Segment",
    "WarmupSegment",
    "PiecewiseTrajectory",
    "PhasePlaneAnalyzer",
]

#: Relative radius (w.r.t. ``q0`` and ``C``) below which the composed
#: trajectory is considered converged to the equilibrium point.
DEFAULT_CONVERGENCE_RTOL = 1e-6


class PaperCase(enum.Enum):
    """The paper's case taxonomy of Section IV.C.

    With thresholds ``A* = 4 pm^2 C^2 / w^2`` (equivalently ``4/k^2``)
    and ``B* = 4 pm^2 C / w^2`` (``4/(k^2 C)``):

    ==========  =====================  =====================
    case        increase region        decrease region
    ==========  =====================  =====================
    CASE1       focus (``a < A*``)     focus (``b < B*``)
    CASE2       node  (``a > A*``)     focus (``b < B*``)
    CASE3       focus (``a < A*``)     node  (``b > B*``)
    CASE4       node  (``a > A*``)     node  (``b > B*``)
    CASE5       ``a = A*`` or ``b = B*`` (degenerate boundary)
    ==========  =====================  =====================
    """

    CASE1 = "case1"
    CASE2 = "case2"
    CASE3 = "case3"
    CASE4 = "case4"
    CASE5 = "case5"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_case(params: NormalizedParams) -> PaperCase:
    """Classify the parameters into the paper's Cases 1-5."""
    thr = params.focus_threshold
    if params.n_increase == thr or params.n_decrease == thr:
        return PaperCase.CASE5
    inc_focus = params.increase_is_focus
    dec_focus = params.decrease_is_focus
    if inc_focus and dec_focus:
        return PaperCase.CASE1
    if not inc_focus and dec_focus:
        return PaperCase.CASE2
    if inc_focus and not dec_focus:
        return PaperCase.CASE3
    return PaperCase.CASE4


@dataclass(frozen=True)
class WarmupSegment:
    """The start-up stage of Section IV.C.

    While the queue is empty the switch cannot observe queue variation
    and feeds back ``sigma = q0``; the aggregate rate offset grows
    linearly, ``y(t) = y_start + a q0 t``, with ``x`` pinned at ``-q0``,
    until ``y`` reaches zero after ``T0 = -y_start / (a q0)`` seconds.
    """

    t_start: float
    y_start: float
    a: float
    q0: float

    @property
    def duration(self) -> float:
        return -self.y_start / (self.a * self.q0)

    @property
    def t_end(self) -> float:
        return self.t_start + self.duration

    def state(self, t_local: float) -> tuple[float, float]:
        return (-self.q0, self.y_start + self.a * self.q0 * t_local)

    def sample(self, n: int) -> np.ndarray:
        ts = np.linspace(0.0, self.duration, n)
        ys = self.y_start + self.a * self.q0 * ts
        return np.column_stack([self.t_start + ts, np.full(n, -self.q0), ys])


@dataclass(frozen=True)
class Segment:
    """One closed-form piece of a composed trajectory.

    Attributes
    ----------
    region:
        Which rate-regulation law governs this piece.
    trajectory:
        Closed-form solution in normalised coordinates, with local time
        starting at 0 at the segment's first state.
    t_start:
        Global time at which the segment begins.
    duration:
        Segment length in seconds; ``math.inf`` for a final segment that
        approaches the equilibrium without further switching.
    end_reason:
        Why the segment ended: ``"switch"``, ``"converged"`` or
        ``"time_limit"``.
    extremum_t, extremum_x:
        Local extremum of ``x`` inside the segment (global time / value),
        or None if ``y`` does not vanish inside the segment.
    """

    region: Region
    trajectory: LinearTrajectory
    t_start: float
    duration: float
    end_reason: str
    extremum_t: float | None = None
    extremum_x: float | None = None

    @property
    def t_end(self) -> float:
        return self.t_start + self.duration

    @property
    def start_state(self) -> tuple[float, float]:
        return (self.trajectory.x0, self.trajectory.y0)

    def end_state(self) -> tuple[float, float]:
        if math.isinf(self.duration):
            return (0.0, 0.0)
        return self.trajectory.state(self.duration)

    def state(self, t_local: float) -> tuple[float, float]:
        return self.trajectory.state(t_local)

    def sample(self, n: int, *, horizon: float | None = None) -> np.ndarray:
        """Sample ``n`` points as rows ``(t_global, x, y)``."""
        end = self.duration
        if math.isinf(end):
            end = horizon if horizon is not None else 1.0
        ts = np.linspace(0.0, end, n)
        states = self.trajectory.states(ts)
        return np.column_stack([self.t_start + ts, states])


@dataclass
class PiecewiseTrajectory:
    """A composed trajectory: optional warm-up + closed-form segments."""

    params: NormalizedParams
    segments: list[Segment]
    warmup: WarmupSegment | None = None
    converged: bool = False
    end_reason: str = "unknown"
    switch_states: list[tuple[float, float, float]] = field(default_factory=list)
    #: rows (t, x): every local extremum of x along the trajectory
    extrema: list[tuple[float, float]] = field(default_factory=list)

    # -- scalar summaries ---------------------------------------------------

    @property
    def n_switches(self) -> int:
        return len(self.switch_states)

    @property
    def total_duration(self) -> float:
        if not self.segments:
            return 0.0 if self.warmup is None else self.warmup.duration
        return self.segments[-1].t_end

    def max_x(self) -> float:
        """Exact supremum of ``x(t)`` over the composed trajectory.

        ``x`` is monotone between extrema (``y`` keeps one sign), so the
        supremum is attained either at a segment start or at a local
        extremum; both are enumerated exactly.
        """
        candidates = [seg.start_state[0] for seg in self.segments]
        candidates += [x for _, x in self.extrema]
        if self.warmup is not None:
            candidates.append(-self.params.q0)
        return max(candidates) if candidates else 0.0

    def min_x(self) -> float:
        """Exact infimum of ``x(t)`` over the composed trajectory."""
        candidates = [seg.start_state[0] for seg in self.segments]
        candidates += [x for _, x in self.extrema]
        if self.warmup is not None:
            candidates.append(-self.params.q0)
        return min(candidates) if candidates else 0.0

    def min_x_after_start(self) -> float:
        """Infimum of ``x(t)`` excluding the initial state itself.

        The canonical start is the empty queue (``x = -q0``); Definition 1
        allows the transient, so strong-stability verdicts use the
        infimum over local extrema and later segment starts only.
        """
        candidates = [x for _, x in self.extrema]
        candidates += [seg.start_state[0] for seg in self.segments[1:]]
        return min(candidates) if candidates else 0.0

    def queue_peak(self) -> float:
        """Maximum queue length ``max q(t) = q0 + max x(t)``."""
        return self.params.q0 + self.max_x()

    def queue_trough(self) -> float:
        """Minimum queue length ``min q(t) = q0 + min x(t)``."""
        return self.params.q0 + self.min_x()

    def queue_trough_after_start(self) -> float:
        """Minimum queue after the initial transient left the start state."""
        return self.params.q0 + self.min_x_after_start()

    def amplitude_trend(self) -> float | None:
        """Geometric ratio of successive same-side switching ordinates.

        Returns ``|y_{i+2}| / |y_i|`` averaged over the recorded
        crossings (None with fewer than four crossings).  Below 1 the
        oscillation contracts towards the equilibrium, above 1 it grows,
        and a ratio of exactly 1 is a limit cycle.
        """
        ys = [abs(y) for _, _, y in self.switch_states]
        if len(ys) < 4:
            return None
        ratios = [ys[i + 2] / ys[i] for i in range(len(ys) - 2) if ys[i] > 0]
        if not ratios:
            return None
        return float(np.exp(np.mean(np.log(ratios))))

    def overflows(self) -> bool:
        """True if the queue would exceed the buffer (``x >= B - q0``)."""
        return self.max_x() >= self.params.buffer_size - self.params.q0

    def underflows_after_start(self) -> bool:
        """True if the queue re-empties (``x <= -q0``) after leaving it.

        The canonical start *is* an empty queue, so only excursions after
        the first segment has left ``x = -q0`` count (Definition 1 allows
        a transient).
        """
        threshold = -self.params.q0
        # Local extrema and later segment starts witness any re-emptying.
        for t, x in self.extrema:
            if x <= threshold:
                return True
        for seg in self.segments[1:]:
            if seg.start_state[0] <= threshold:
                return True
        return False

    # -- sampling -----------------------------------------------------------

    def sample(
        self,
        points_per_segment: int = 200,
        *,
        final_horizon: float | None = None,
    ) -> np.ndarray:
        """Sample the trajectory as rows ``(t, x, y)``.

        Parameters
        ----------
        points_per_segment:
            Sample count per closed-form segment (and for the warm-up).
        final_horizon:
            Local duration over which to sample a final infinite
            segment; defaults to three slowest time constants.
        """
        rows: list[np.ndarray] = []
        if self.warmup is not None and self.warmup.duration > 0:
            rows.append(self.warmup.sample(points_per_segment))
        for seg in self.segments:
            horizon = final_horizon
            if horizon is None and math.isinf(seg.duration):
                horizon = 3.0 * self._slowest_time_constant(seg)
            rows.append(seg.sample(points_per_segment, horizon=horizon))
        if not rows:
            return np.empty((0, 3))
        return np.vstack(rows)

    def _slowest_time_constant(self, seg: Segment) -> float:
        eig = seg.trajectory.eig
        if eig.is_focus:
            return 1.0 / abs(eig.alpha)
        lam_slow = max(lam.real for lam in (eig.lambda1, eig.lambda2))
        return 1.0 / abs(lam_slow)

    def queue_time_series(
        self, points_per_segment: int = 200
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(t, q(t), aggregate_rate(t))`` in physical units."""
        samples = self.sample(points_per_segment)
        t = samples[:, 0]
        q = samples[:, 1] + self.params.q0
        rate = samples[:, 2] + self.params.capacity
        return t, q, rate


class PhasePlaneAnalyzer:
    """Composes and classifies BCN phase trajectories.

    Parameters
    ----------
    params:
        Normalised parameters; build them from physical ones with
        :meth:`repro.core.parameters.BCNParams.normalized`.

    Examples
    --------
    >>> from repro.core.parameters import paper_example_params
    >>> analyzer = PhasePlaneAnalyzer(paper_example_params().normalized())
    >>> traj = analyzer.compose()
    >>> traj.converged
    True
    """

    def __init__(self, params: NormalizedParams | BCNParams) -> None:
        if isinstance(params, BCNParams):
            params = params.normalized()
        self.params = params
        self.line = SwitchingLine(params.k)
        self._eigs = {
            Region.INCREASE: region_eigenstructure(params, Region.INCREASE),
            Region.DECREASE: region_eigenstructure(params, Region.DECREASE),
        }

    # -- classification ----------------------------------------------------

    @property
    def case(self) -> PaperCase:
        """The paper's case (1-5) for these parameters."""
        return classify_case(self.params)

    def region_eig(self, region: Region):
        """Eigenstructure of the linearised dynamics in ``region``."""
        return self._eigs[region]

    def region_of(self, x: float, y: float) -> Region:
        """Region containing ``(x, y)``, resolving on-line points by flow."""
        return self.line.region_or_heading(x, y)

    # -- composition ---------------------------------------------------------

    def compose(
        self,
        x0: float | None = None,
        y0: float = 0.0,
        *,
        max_switches: int = 200,
        t_max: float = math.inf,
        convergence_rtol: float = DEFAULT_CONVERGENCE_RTOL,
        include_warmup: bool = False,
        initial_rate_offset: float | None = None,
    ) -> PiecewiseTrajectory:
        """Compose the piecewise-linear trajectory from an initial state.

        Parameters
        ----------
        x0, y0:
            Normalised initial state; defaults to the canonical
            post-warm-up point ``(-q0, 0)``.
        max_switches:
            Hard cap on switching-line crossings (limit cycles would
            otherwise never terminate).
        t_max:
            Global time horizon.
        convergence_rtol:
            Relative radius (``max(|x|/q0, |y|/C)``) below which the
            trajectory is considered converged.
        include_warmup:
            Prepend the linear warm-up stage from
            ``(-q0, initial_rate_offset)``; requires ``x0`` unset.
        initial_rate_offset:
            Normalised ``y`` at the very start of warm-up
            (``N*mu - C < 0``); defaults to ``-C`` (sources start silent).
        """
        p = self.params
        warmup: WarmupSegment | None = None
        if include_warmup:
            if x0 is not None:
                raise ValueError("include_warmup fixes the start at (-q0, .)")
            y_start = -p.capacity if initial_rate_offset is None else initial_rate_offset
            if y_start >= 0:
                raise ValueError("warm-up requires an initial aggregate rate below C")
            warmup = WarmupSegment(t_start=0.0, y_start=y_start, a=p.a, q0=p.q0)
            t = warmup.duration
            x, y = -p.q0, 0.0
        else:
            x = -p.q0 if x0 is None else x0
            y = y0
            t = 0.0

        segments: list[Segment] = []
        switch_states: list[tuple[float, float, float]] = []
        extrema: list[tuple[float, float]] = []
        converged = False
        end_reason = "max_switches"
        # After a crossing the state sits on the line to FP error, so the
        # sign test is unreliable there; the flow direction (exact, since
        # d(x+ky)/dt = y on the line) decides the region instead.
        region: Region | None = None

        for _ in range(max_switches + 1):
            if self._is_converged(x, y, convergence_rtol):
                converged = True
                end_reason = "converged"
                break
            if region is None:
                region = self.region_of(x, y)
            traj = linear_trajectory(self._eigs[region], x, y)
            t_cross = traj.first_line_crossing_time(p.k)
            remaining = t_max - t

            if t_cross is None or t_cross >= remaining:
                # Final segment: no further switching within the horizon.
                duration = remaining if math.isfinite(remaining) else math.inf
                reason = "time_limit" if t_cross is not None and math.isfinite(remaining) else "converged"
                ext_t, ext_x = self._segment_extremum(traj, duration)
                if ext_t is not None:
                    extrema.append((t + ext_t, ext_x))
                segments.append(
                    Segment(region, traj, t, duration, reason,
                            extremum_t=None if ext_t is None else t + ext_t,
                            extremum_x=ext_x)
                )
                converged = reason == "converged"
                end_reason = reason
                break

            ext_t, ext_x = self._segment_extremum(traj, t_cross)
            if ext_t is not None:
                extrema.append((t + ext_t, ext_x))
            segments.append(
                Segment(region, traj, t, t_cross, "switch",
                        extremum_t=None if ext_t is None else t + ext_t,
                        extremum_x=ext_x)
            )
            x, y = traj.state(t_cross)
            t += t_cross
            switch_states.append((t, x, y))
            region = self.line.crossing_direction(y) if y != 0.0 else None

        return PiecewiseTrajectory(
            params=p,
            segments=segments,
            warmup=warmup,
            converged=converged,
            end_reason=end_reason,
            switch_states=switch_states,
            extrema=extrema,
        )

    def _is_converged(self, x: float, y: float, rtol: float) -> bool:
        return abs(x) / self.params.q0 <= rtol and abs(y) / self.params.capacity <= rtol

    @staticmethod
    def _segment_extremum(
        traj: LinearTrajectory, duration: float
    ) -> tuple[float | None, float | None]:
        t_ext = traj.first_y_zero_time()
        if t_ext is None or t_ext >= duration:
            return None, None
        return t_ext, traj.state(t_ext)[0]

    # -- derived diagnostics --------------------------------------------------

    def first_round_peak(self) -> float:
        """Queue offset peak of the first decrease round, from ``(-q0, 0)``.

        This is the quantity the paper bounds as ``max1{x}`` (Case 1,
        eq. 36) and ``max2{x}`` (Case 2, eq. 38); computed here from the
        composed trajectory so it is exact in every case.
        """
        traj = self.compose(max_switches=4)
        xs = [x for _, x in traj.extrema if x > 0]
        return max(xs) if xs else 0.0

    def first_round_trough(self) -> float:
        """Queue offset minimum of the first re-increase round (``min1{x}``)."""
        traj = self.compose(max_switches=6)
        # Skip the starting point itself (x = -q0); collect negative extrema.
        xs = [x for _, x in traj.extrema if x < 0]
        return min(xs) if xs else 0.0

    def switching_ordinates(self, n_rounds: int = 10) -> list[float]:
        """Ordinates ``y`` of successive switching-line crossings.

        For Case 1 these alternate in sign; the ratio of same-sign
        successive ordinates is the return-map contraction (exactly 1 on
        a limit cycle).
        """
        traj = self.compose(max_switches=2 * n_rounds)
        return [y for _, _, y in traj.switch_states]

"""Lyapunov/energy analysis of the BCN phase plane.

A complement to the paper's trajectory-by-trajectory treatment: both
regions of the switched system admit explicit energy functions whose
decay certifies convergence, and whose *conservation* in limiting cases
explains the closed orbits of Fig. 7.

* **Increase region** (linear, ``y' = -a(x + ky)``): the mechanical
  energy ``V_i(x, y) = (a x^2 + y^2) / 2`` satisfies
  ``dV_i/dt = -a k y^2 <= 0`` — all dissipation is carried by the
  ``k``-term, i.e. by the queue-derivative weight ``w``.
* **Decrease region** (nonlinear, ``y' = -b(y + C)(x + ky)``): the
  first integral of the undamped (``k = 0``) flow is
  ``V_d(x, y) = b x^2/2 + y - C ln(1 + y/C)``, positive definite for
  ``y > -C``, and along the damped flow ``dV_d/dt = -b k y^2 <= 0`` —
  the exact mirror of the increase region.  *All* of the BCN loop's
  dissipation, in both regions, is the ``-(gain) k y^2`` term carried
  by the queue-derivative weight: a one-line Lyapunov proof that the
  system converges for ``k > 0`` and is marginal at ``k = 0``.
* At ``k = 0`` both energies are exactly conserved within their regions
  — but they are *different* functions, and a crossing hands an orbit
  from one level set to the other.  :func:`crossing_energy_ratio`
  quantifies the handoff; in the linearised model it is 1 (closed
  orbits), while the nonlinear ``V_d`` asymmetry makes each decrease
  pass slightly lossy — the extra dissipation documented in the Fig. 7
  experiment.
"""

from __future__ import annotations

import math

import numpy as np

from .parameters import BCNParams, NormalizedParams

__all__ = [
    "increase_energy",
    "increase_energy_rate",
    "decrease_energy",
    "decrease_energy_rate",
    "energy_along",
    "crossing_energy_ratio",
]


def _as_normalized(params: NormalizedParams | BCNParams) -> NormalizedParams:
    return params.normalized() if isinstance(params, BCNParams) else params


def increase_energy(params: NormalizedParams | BCNParams,
                    x: float, y: float) -> float:
    """``V_i = (a x^2 + y^2)/2`` — positive definite on the plane."""
    p = _as_normalized(params)
    return 0.5 * (p.a * x * x + y * y)


def increase_energy_rate(params: NormalizedParams | BCNParams,
                         x: float, y: float) -> float:
    """Exact ``dV_i/dt = -a k y^2`` along the increase flow."""
    p = _as_normalized(params)
    return -p.a * p.k * y * y


def decrease_energy(params: NormalizedParams | BCNParams,
                    x: float, y: float) -> float:
    """``V_d = b x^2/2 + y - C ln(1 + y/C)``, defined for ``y > -C``.

    The first integral of the undamped decrease flow; its level sets
    are the closed decrease-region arcs of the ``k -> 0`` orbits.
    """
    p = _as_normalized(params)
    c = p.capacity
    if y <= -c:
        raise ValueError("decrease energy requires y > -C (positive rate)")
    return 0.5 * p.b * x * x + y - c * math.log1p(y / c)


def decrease_energy_rate(params: NormalizedParams | BCNParams,
                         x: float, y: float) -> float:
    """Exact ``dV_d/dt = -b k y^2`` along the damped decrease flow.

    From the chain rule, ``dV_d/dt = b x y + (y/(y+C)) ydot`` with
    ``ydot = -b (y+C)(x+ky)``, which collapses to ``-b k y^2``.
    """
    p = _as_normalized(params)
    if y <= -p.capacity:
        raise ValueError("decrease energy requires y > -C")
    return -p.b * p.k * y * y


def energy_along(
    params: NormalizedParams | BCNParams,
    xs: np.ndarray,
    ys: np.ndarray,
    *,
    region: str,
) -> np.ndarray:
    """Evaluate the region energy along a sampled trajectory."""
    p = _as_normalized(params)
    xs = np.asarray(xs, float)
    ys = np.asarray(ys, float)
    if region == "increase":
        return 0.5 * (p.a * xs * xs + ys * ys)
    if region == "decrease":
        c = p.capacity
        if np.any(ys <= -c):
            raise ValueError("decrease energy requires y > -C")
        return 0.5 * p.b * xs * xs + ys - c * np.log1p(ys / c)
    raise ValueError(f"unknown region {region!r}")


def crossing_energy_ratio(
    params: NormalizedParams | BCNParams, y_enter: float
) -> float:
    """Exit/enter ordinate ratio of one undamped decrease pass.

    For ``k = 0`` the decrease region conserves ``V_d``, so a pass
    entering the region at ``(0, +y_enter)`` exits at ``(0, -y_exit)``
    with ``V_d(0, y_enter) = V_d(0, y_exit)``.  Because ``V_d`` is
    asymmetric in ``y`` (``y - C ln(1+y/C)`` grows faster for ``y > 0``),
    ``y_exit < y_enter`` strictly: the nonlinear decrease pass loses
    amplitude even without damping.  Returns ``y_exit / y_enter``.
    """
    p = _as_normalized(params)
    c = p.capacity
    if not 0 < y_enter < c:
        raise ValueError("need 0 < y_enter < C")
    target = y_enter - c * math.log1p(y_enter / c)

    # solve h(y) = -y - C ln(1 - y/C) = target for y in (0, C)
    def h(y: float) -> float:
        return -y - c * math.log1p(-y / c) - target

    lo, hi = 1e-12 * c, c * (1.0 - 1e-12)
    from scipy.optimize import brentq

    y_exit = float(brentq(h, lo, hi))
    return y_exit / y_enter

"""Limit-cycle analysis of the BCN system via a Poincaré return map.

Section IV.C (Case 1) observes that the BCN queue can enter a **limit
cycle**: a closed phase trajectory along which queue and rate oscillate
with constant amplitude forever (Fig. 7) — a phenomenon linear analysis
cannot reveal.

We analyse it with the half-line Poincaré section

    ``Sigma+ = { (-k y, y) : y > 0 }``

(the upper half of the switching line, where trajectories enter the
rate-decrease region).  The **return map** ``P`` sends an entry ordinate
``y`` to the ordinate at the next entry, after one decrease-region pass
and one increase-region pass.  Structure:

* In the *linearised* system ``P`` is exactly linear,
  ``P(y) = rho * y`` with the closed-form contraction
  ``rho = exp(alpha_i pi / beta_i) * exp(alpha_d pi / beta_d) < 1``
  (each spiral half-turn contracts), so the linearised Case-1 system
  always converges and has **no** limit cycle — consistent with
  Proposition 1 and with the paper's point that the cycle is a purely
  nonlinear phenomenon.
* In the *full nonlinear* system the decrease strength carries the
  factor ``(y + C)``, making the per-round contraction amplitude
  dependent; a fixed point ``P(y*) = y*`` is an isolated periodic orbit.
  (The paper's limit-cycle condition ``x_i^k(0) = x_i^{k+1}(0)`` is this
  fixed-point equation stated on the other half-line.)
* In the *physical* system the buffer saturations can also sustain
  boundary oscillations; the same machinery applies with
  ``mode="physical"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp
from scipy.optimize import brentq

from ..fluid.integrate import solver_limits
from ..fluid.model import as_normalized, decrease_field, increase_field, linearized_decrease_field
from .eigen import Region, region_eigenstructure
from .parameters import BCNParams, NormalizedParams
from .phase_plane import PaperCase, classify_case

__all__ = [
    "linearized_contraction",
    "return_map",
    "contraction_ratio",
    "LimitCycle",
    "find_limit_cycle",
    "amplitude_scan",
]


def linearized_contraction(params: NormalizedParams | BCNParams) -> float:
    """Closed-form per-round contraction of the linearised Case-1 map.

    ``rho = exp(pi (alpha_i/beta_i + alpha_d/beta_d)) < 1``; the
    switching ordinate shrinks by exactly this factor per oscillation
    round, so the linearised system spirals in geometrically.
    """
    p = as_normalized(params)
    if classify_case(p) is not PaperCase.CASE1:
        raise ValueError("the spiral return map requires Case 1 parameters")
    ei = region_eigenstructure(p, Region.INCREASE)
    ed = region_eigenstructure(p, Region.DECREASE)
    return math.exp(math.pi * (ei.alpha / ei.beta + ed.alpha / ed.beta))


def _cross_region(
    field,
    p: NormalizedParams,
    x: float,
    y: float,
    *,
    t_max: float,
    rtol: float = 1e-10,
    max_step: float | None = None,
) -> tuple[float, float, float, np.ndarray]:
    """Integrate one region pass until the switching line is re-crossed.

    Returns ``(t_cross, x_cross, y_cross, samples)`` where samples are
    rows ``(t, x, y)``.  Raises RuntimeError if no crossing occurs within
    ``t_max`` (possible for node-type regions, which is out of scope for
    the Case-1 return map).
    """

    def crossing(t: float, s: np.ndarray) -> float:
        return s[0] + p.k * s[1]

    crossing.terminal = True

    # Nudge the start off the line along the flow so the event does not
    # fire at t = 0.
    dx, dy = field(0.0, np.array([x, y]))
    eps = 1e-12 * max(p.q0, 1.0)
    scale = math.hypot(dx, dy)
    if scale > 0:
        x += eps * dx / scale
        y += eps * dy / scale

    if max_step is None:
        max_step = solver_limits(p)[1]
    sol = solve_ivp(
        field,
        (0.0, t_max),
        [x, y],
        events=[crossing],
        rtol=rtol,
        atol=min(p.q0, p.capacity) * 1e-13,
        max_step=max_step,
    )
    if sol.status != 1 or len(sol.t_events[0]) == 0:
        raise RuntimeError("region pass did not re-cross the switching line")
    t_c = float(sol.t_events[0][-1])
    x_c, y_c = (float(v) for v in sol.y_events[0][-1])
    samples = np.column_stack([sol.t, sol.y[0], sol.y[1]])
    return t_c, x_c, y_c, samples


def return_map(
    params: NormalizedParams | BCNParams,
    y: float,
    *,
    mode: str = "nonlinear",
    t_max: float | None = None,
    with_orbit: bool = False,
) -> float | tuple[float, float, np.ndarray]:
    """One application of the Poincaré return map ``P`` at ordinate ``y``.

    Starts at ``(-k y, y)`` on the upper switching half-line, passes
    through the decrease region and then the increase region, and
    returns the ordinate at re-entry.

    Parameters
    ----------
    y:
        Entry ordinate, ``0 < y < C`` (the aggregate rate stays positive).
    mode:
        ``"nonlinear"`` (full decrease law) or ``"linearized"``.
    with_orbit:
        When True, also return the round-trip period and the sampled
        orbit as rows ``(t, x, y)``.
    """
    p = as_normalized(params)
    if classify_case(p) is not PaperCase.CASE1:
        raise ValueError("the return map requires Case 1 (both regions spiral)")
    if not 0.0 < y:
        raise ValueError("return map is defined on the upper half-line y > 0")
    if y >= p.capacity and mode != "linearized":
        raise ValueError("entry ordinate must satisfy y < C (positive rate)")
    dec = linearized_decrease_field(p) if mode == "linearized" else decrease_field(p)
    inc = increase_field(p)
    if t_max is None:
        ed = region_eigenstructure(p, Region.DECREASE)
        ei = region_eigenstructure(p, Region.INCREASE)
        # Several half-turn periods of the slower spiral.
        slowest_beta = min(
            (e.beta for e in (ed, ei) if e.is_focus), default=None
        )
        if slowest_beta is None:
            raise ValueError("return map requires Case 1 (both regions spiral)")
        t_max = 20.0 * math.pi / slowest_beta

    # One eigenvalue-bound computation per map application, not per pass.
    max_step = solver_limits(p)[1]
    x0 = -p.k * y
    t1, x1, y1, orbit_d = _cross_region(dec, p, x0, y, t_max=t_max,
                                        max_step=max_step)
    t2, x2, y2, orbit_i = _cross_region(inc, p, x1, y1, t_max=t_max,
                                        max_step=max_step)
    if with_orbit:
        orbit_i = orbit_i.copy()
        orbit_i[:, 0] += t1
        return y2, t1 + t2, np.vstack([orbit_d, orbit_i])
    return y2


def contraction_ratio(
    params: NormalizedParams | BCNParams, y: float, *, mode: str = "nonlinear"
) -> float:
    """Per-round amplitude ratio ``P(y)/y`` at entry ordinate ``y``."""
    return return_map(params, y, mode=mode) / y


@dataclass(frozen=True)
class LimitCycle:
    """An isolated periodic orbit of the switched BCN system.

    Attributes
    ----------
    entry_ordinate:
        Fixed point ``y*`` of the return map on the upper half-line.
    period:
        Round-trip time of the closed orbit (seconds).
    orbit:
        Sampled orbit, rows ``(t, x, y)`` over one period.
    stable:
        Orbital stability: ``|P'(y*)| < 1`` (attracting cycle).
    derivative:
        Finite-difference estimate of ``P'(y*)``.
    queue_amplitude:
        Peak-to-trough excursion of ``q(t)`` along the cycle.
    """

    entry_ordinate: float
    period: float
    orbit: np.ndarray
    stable: bool
    derivative: float

    @property
    def queue_amplitude(self) -> float:
        return float(self.orbit[:, 1].max() - self.orbit[:, 1].min())

    @property
    def rate_amplitude(self) -> float:
        return float(self.orbit[:, 2].max() - self.orbit[:, 2].min())


def find_limit_cycle(
    params: NormalizedParams | BCNParams,
    *,
    y_lo: float | None = None,
    y_hi: float | None = None,
    mode: str = "nonlinear",
    xtol_rel: float = 1e-10,
    scan: str = "batch",
) -> LimitCycle | None:
    """Search the upper half-line for a fixed point of the return map.

    Scans ``[y_lo, y_hi]`` (defaults: ``[1e-4 C, 0.95 C]``) for a sign
    change of ``P(y) - y`` and refines it with Brent's method.  Returns
    None when every scanned amplitude contracts (no cycle), which is the
    generic Case-1 outcome for paper-recommended parameters.

    ``scan`` selects how the bracket scan is evaluated: ``"batch"``
    (default) runs all 25 ordinates as one vectorized integration
    (:func:`repro.fluid.batch.batch_return_map`) and re-checks any
    bracket it finds with the ``solve_ivp`` reference before root
    refinement; ``"reference"`` evaluates each ordinate sequentially.
    Both paths hand the bracket to the same Brent refinement on the
    reference map, so the located cycle is scan-independent.
    """
    p = as_normalized(params)
    if y_lo is None:
        y_lo = 1e-4 * p.capacity
    if y_hi is None:
        y_hi = 0.95 * p.capacity

    def residual(y: float) -> float:
        return return_map(p, y, mode=mode) - y

    ys = np.geomspace(y_lo, y_hi, 25)
    if scan == "batch":
        from ..fluid.batch import batch_return_map

        try:
            values = list(batch_return_map(p, ys, mode=mode) - ys)
        except RuntimeError:
            # a row failed to re-cross within the horizon — fall back
            values = [residual(float(y)) for y in ys]
    elif scan == "reference":
        values = [residual(float(y)) for y in ys]
    else:
        raise ValueError(f"unknown scan method {scan!r}")
    bracket = None
    for (ya, va), (yb, vb) in zip(zip(ys, values), zip(ys[1:], values[1:])):
        if va == 0.0:
            bracket = (float(ya), float(ya))
            break
        if va * vb < 0.0:
            bracket = (float(ya), float(yb))
            break
    if bracket is None:
        return None
    if scan == "batch" and bracket[0] != bracket[1]:
        # Verify the batch-located bracket against the reference map;
        # a sign flip inside the batch tolerance band is not a cycle.
        va, vb = residual(bracket[0]), residual(bracket[1])
        if va == 0.0:
            bracket = (bracket[0], bracket[0])
        elif va * vb >= 0.0:
            return find_limit_cycle(
                p, y_lo=y_lo, y_hi=y_hi, mode=mode,
                xtol_rel=xtol_rel, scan="reference",
            )
    if bracket[0] == bracket[1]:
        y_star = bracket[0]
    else:
        y_star = float(
            brentq(residual, bracket[0], bracket[1], xtol=xtol_rel * p.capacity)
        )
    _, period, orbit = return_map(p, y_star, mode=mode, with_orbit=True)
    h = max(1e-6 * y_star, 1e-9 * p.capacity)
    deriv = (return_map(p, y_star + h, mode=mode) - return_map(p, y_star - h, mode=mode)) / (2 * h)
    return LimitCycle(
        entry_ordinate=y_star,
        period=period,
        orbit=orbit,
        stable=abs(deriv) < 1.0,
        derivative=deriv,
    )


def amplitude_scan(
    params: NormalizedParams | BCNParams,
    ordinates: np.ndarray,
    *,
    mode: str = "nonlinear",
    method: str = "batch",
) -> np.ndarray:
    """Evaluate ``P(y)/y`` over a grid of entry ordinates.

    Returns rows ``(y, ratio)``; ratios above 1 mark amplitude growth.
    Useful for mapping where cycles can live before running the root
    finder, and for the Fig. 7 benchmark's convergence diagnostics.

    ``method="batch"`` (default) evaluates the whole grid as one
    vectorized integration; ``"reference"`` maps the ``solve_ivp``
    return map over the ordinates sequentially.
    """
    p = as_normalized(params)
    ordinates = np.asarray(ordinates, dtype=float)
    if method == "batch":
        from ..fluid.batch import batch_return_map

        ratios = batch_return_map(p, ordinates, mode=mode) / ordinates
        return np.column_stack([ordinates, ratios])
    if method == "reference":
        rows = [
            (float(y), contraction_ratio(p, float(y), mode=mode))
            for y in ordinates
        ]
        return np.array(rows)
    raise ValueError(f"unknown scan method {method!r}")

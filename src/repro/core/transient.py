"""Transient-performance analysis of the BCN loop.

The paper's conclusion names this as future work: "investigate the
transient behaviors of BCN system and evaluate the impact of parameters
on the transient performance."  The phase-plane machinery makes it
closed-form for the linearised Case-1 system:

* the oscillation **round period** is the sum of the half-turn times of
  the two spirals, ``T_round = pi/beta_i + pi/beta_d``;
* the per-round amplitude **contraction** is
  ``rho = exp(pi (alpha_i/beta_i + alpha_d/beta_d))``;
* the **settling time** to an amplitude fraction ``eps`` is therefore
  ``T_round * ln(eps)/ln(rho)`` (plus the first partial round);
* the **overshoot** is the Case-1/2 peak bound of eqs. (36)/(38);
* the **warm-up time** is ``T0 = (C - N mu)/(a q0)``.

These formulas quantify the paper's parameter remarks: ``w`` and ``pm``
(through ``k``) do not move the stability criterion but set the damping,
hence the convergence speed; ``q0`` trades warm-up time against buffer
need; ``Gi``/``Gd`` trade buffer need against settling time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .eigen import Region, region_eigenstructure
from .parameters import BCNParams, NormalizedParams
from .phase_plane import PaperCase, PhasePlaneAnalyzer, classify_case
from .stability import case1_excursion_bounds, case2_peak_bound

__all__ = [
    "round_period",
    "settling_rounds",
    "settling_time",
    "overshoot_ratio",
    "TransientReport",
    "transient_report",
]


def _as_normalized(params: NormalizedParams | BCNParams) -> NormalizedParams:
    return params.normalized() if isinstance(params, BCNParams) else params


def round_period(params: NormalizedParams | BCNParams) -> float:
    """One full oscillation round ``pi/beta_i + pi/beta_d`` (Case 1)."""
    p = _as_normalized(params)
    if classify_case(p) is not PaperCase.CASE1:
        raise ValueError("round_period requires Case 1 (both regions spiral)")
    beta_i = region_eigenstructure(p, Region.INCREASE).beta
    beta_d = region_eigenstructure(p, Region.DECREASE).beta
    return math.pi / beta_i + math.pi / beta_d


def settling_rounds(
    params: NormalizedParams | BCNParams, *, fraction: float = 0.01
) -> float:
    """Rounds until the oscillation amplitude falls to ``fraction``.

    ``n = ln(fraction) / ln(rho)`` with the per-round contraction
    ``rho``; fractional rounds are meaningful (the decay is geometric).
    """
    if not 0 < fraction < 1:
        raise ValueError("fraction must lie in (0, 1)")
    from .limit_cycle import linearized_contraction

    rho = linearized_contraction(params)
    return math.log(fraction) / math.log(rho)


def settling_time(
    params: NormalizedParams | BCNParams, *, fraction: float = 0.01
) -> float:
    """Time until the amplitude falls to ``fraction`` of its first peak."""
    return settling_rounds(params, fraction=fraction) * round_period(params)


def overshoot_ratio(params: NormalizedParams | BCNParams) -> float:
    """Transient queue overshoot past ``q0``, as a multiple of ``q0``.

    0 for the node-decrease cases (no overshoot); the eq. 36 / eq. 38
    peak otherwise.
    """
    p = _as_normalized(params)
    case = classify_case(p)
    if case is PaperCase.CASE1:
        max1, _ = case1_excursion_bounds(p)
        return max1 / p.q0
    if case is PaperCase.CASE2:
        return case2_peak_bound(p) / p.q0
    return 0.0


@dataclass(frozen=True)
class TransientReport:
    """Closed-form transient profile of one configuration.

    Attributes
    ----------
    case:
        Paper case of the configuration.
    overshoot_ratio:
        Peak queue excursion past ``q0`` as a multiple of ``q0``.
    contraction:
        Per-round amplitude contraction (None outside Case 1).
    round_period:
        Oscillation round time in seconds (None outside Case 1).
    settling_time_1pct:
        Time for the oscillation amplitude to fall to 1% (None outside
        Case 1 — the node cases settle in a single pass).
    crossings:
        Switching-line crossings of the canonical trajectory (exact).
    warmup_time:
        ``T0`` for the given initial rate, when physical parameters were
        supplied (None for normalised input).
    """

    case: PaperCase
    overshoot_ratio: float
    contraction: float | None
    round_period: float | None
    settling_time_1pct: float | None
    crossings: int
    warmup_time: float | None

    def summary(self) -> str:
        parts = [f"case={self.case.value}",
                 f"overshoot={self.overshoot_ratio:.3f}*q0",
                 f"crossings={self.crossings}"]
        if self.contraction is not None:
            parts.append(f"rho={self.contraction:.4f}")
        if self.settling_time_1pct is not None:
            parts.append(f"settle(1%)={self.settling_time_1pct:.3g}s")
        if self.warmup_time is not None:
            parts.append(f"T0={self.warmup_time:.3g}s")
        return ", ".join(parts)


def transient_report(
    params: NormalizedParams | BCNParams, *, max_switches: int = 200
) -> TransientReport:
    """Build the closed-form transient profile of a configuration."""
    p = _as_normalized(params)
    case = classify_case(p)
    warmup = params.warmup_duration() if isinstance(params, BCNParams) else None
    traj = PhasePlaneAnalyzer(p).compose(max_switches=max_switches)
    if case is PaperCase.CASE1:
        from .limit_cycle import linearized_contraction

        return TransientReport(
            case=case,
            overshoot_ratio=overshoot_ratio(p),
            contraction=linearized_contraction(p),
            round_period=round_period(p),
            settling_time_1pct=settling_time(p),
            crossings=traj.n_switches,
            warmup_time=warmup,
        )
    return TransientReport(
        case=case,
        overshoot_ratio=overshoot_ratio(p),
        contraction=None,
        round_period=None,
        settling_time_1pct=None,
        crossings=traj.n_switches,
        warmup_time=warmup,
    )

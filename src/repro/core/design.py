"""Parameter design: Theorem 1 inverted into operator guidelines.

The paper promises "straightforward guidelines for proper parameter
settings"; this module turns the criterion and the transient formulas
into design calculators.  Theorem 1,

    (1 + sqrt(Ru Gi N / (Gd C))) q0 < B,

can be solved for any single unknown:

* :func:`max_flows` — the largest ``N`` a buffer supports;
* :func:`max_gi` / :func:`min_gd` — admissible gain settings;
* :func:`max_q0` — the largest reference queue for a given buffer;
* :func:`min_buffer` — re-export of ``required_buffer`` for symmetry.

Beyond bare stability, :func:`design_w` picks the derivative weight
``w`` that achieves a target settling time (via the Case-1 contraction),
and :func:`design_report` assembles a reviewed configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .parameters import BCNParams
from .stability import required_buffer, theorem1_criterion
from .transient import transient_report

__all__ = [
    "headroom_ratio",
    "max_flows",
    "max_gi",
    "min_gd",
    "max_q0",
    "min_buffer",
    "design_w",
    "DesignCheck",
    "design_report",
]


def headroom_ratio(params: BCNParams) -> float:
    """``B / required_buffer``: above 1 the configuration is admitted."""
    return params.buffer_size / required_buffer(params)


def _gain_budget(params: BCNParams) -> float:
    """The value ``(B/q0 - 1)^2`` that ``Ru Gi N / (Gd C)`` must stay under."""
    ratio = params.buffer_size / params.q0 - 1.0
    if ratio <= 0:
        raise ValueError("buffer must exceed q0")
    return ratio * ratio


def max_flows(params: BCNParams) -> int:
    """Largest flow count ``N`` for which Theorem 1 admits the buffer."""
    budget = _gain_budget(params)
    n = budget * params.gd * params.capacity / (params.ru * params.gi)
    return max(0, math.ceil(n) - 1)


def max_gi(params: BCNParams) -> float:
    """Largest additive gain ``Gi`` the buffer admits (other params fixed)."""
    budget = _gain_budget(params)
    return budget * params.gd * params.capacity / (params.ru * params.n_flows)


def min_gd(params: BCNParams) -> float:
    """Smallest multiplicative gain ``Gd`` the buffer admits."""
    budget = _gain_budget(params)
    return params.ru * params.gi * params.n_flows / (budget * params.capacity)


def max_q0(params: BCNParams) -> float:
    """Largest reference queue a buffer admits: ``B / (1 + sqrt(a/bC))``."""
    factor = 1.0 + math.sqrt(
        params.ru * params.gi * params.n_flows / (params.gd * params.capacity)
    )
    return params.buffer_size / factor


def min_buffer(params: BCNParams) -> float:
    """Alias of :func:`repro.core.stability.required_buffer`."""
    return required_buffer(params)


def design_w(
    params: BCNParams,
    *,
    settle_seconds: float,
    fraction: float = 0.01,
) -> float:
    """Pick ``w`` so the Case-1 oscillation settles in ``settle_seconds``.

    For small ``k`` the contraction is
    ``rho ~ exp(-pi k (sqrt(a) + sqrt(bC)) / 2)`` and the round period is
    ``T ~ pi (1/sqrt(a) + 1/sqrt(bC))``, so the settling time to
    ``fraction`` is ``T ln(fraction)/ln(rho)``; solving for ``k`` and
    converting back through ``w = k pm C`` gives the weight.  The result
    is validated against the exact formulas and refined by bisection if
    the small-``k`` expansion is off by more than 1%.
    """
    if settle_seconds <= 0:
        raise ValueError("settle_seconds must be positive")
    n = params.normalized()
    sa, sd = math.sqrt(n.a), math.sqrt(n.b * n.capacity)
    period = math.pi * (1.0 / sa + 1.0 / sd)
    rounds_needed = settle_seconds / period
    # ln(fraction)/ln(rho) = rounds  =>  ln(rho) = ln(fraction)/rounds
    log_rho = math.log(fraction) / rounds_needed
    k = -2.0 * log_rho / (math.pi * (sa + sd))
    w = k * params.pm * params.capacity

    # Validate with the exact Case-1 formulas; refine if needed.
    from .transient import settling_time as exact_settling

    candidate = params.with_(w=w)
    try:
        achieved = exact_settling(candidate, fraction=fraction)
    except ValueError:
        raise ValueError(
            "no Case-1 solution: the requested settling time pushes the "
            "system out of the spiral regime; relax settle_seconds"
        ) from None
    if abs(achieved - settle_seconds) / settle_seconds > 0.01:
        lo, hi = w / 10.0, w * 10.0
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            try:
                s = exact_settling(params.with_(w=mid), fraction=fraction)
            except ValueError:
                hi = mid
                continue
            if s > settle_seconds:
                lo = mid  # need more damping: larger w
            else:
                hi = mid
        w = math.sqrt(lo * hi)
    return w


@dataclass(frozen=True)
class DesignCheck:
    """A reviewed configuration: criterion, margins and transients."""

    params: BCNParams
    admitted: bool
    headroom: float
    required_buffer: float
    transient_summary: str

    def render(self) -> str:
        verdict = "ADMITTED" if self.admitted else "REJECTED"
        return (
            f"[{verdict}] headroom {self.headroom:.2f}x "
            f"(needs {self.required_buffer:.4g} of {self.params.buffer_size:.4g}); "
            f"{self.transient_summary}"
        )


def design_report(params: BCNParams) -> DesignCheck:
    """Assess a configuration as an operator checklist entry."""
    return DesignCheck(
        params=params,
        admitted=theorem1_criterion(params),
        headroom=headroom_ratio(params),
        required_buffer=required_buffer(params),
        transient_summary=transient_report(params).summary(),
    )

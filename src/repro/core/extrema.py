"""The paper's explicit extremum formulas (eqs. 18-20, 28 and 34).

``x(t)`` attains a local extremum exactly when ``y(t) = dx/dt = 0``.  The
paper derives, for each trajectory family, both the time ``t*`` of the
extremum nearest the initial point and the extremum value itself:

* focus: ``t*`` (eq. 18) and the spiral extrema ``max_x^s`` / ``min_x^s``
  (eqs. 19-20),
* node: the global extremum ``mum_x^p`` (eq. 28),
* degenerate node: the unique extremum ``mum_x^u`` (eq. 34).

This module implements those formulas *as printed* (so the tests can
check them against the paper) next to numerically robust versions built
on the closed-form trajectories of :mod:`repro.core.trajectories`.  The
printed ``t*`` uses principal-value arctangents and is stated for initial
points with ``x(0) != 0``; the robust versions work everywhere.
"""

from __future__ import annotations

import math

from .eigen import Eigenstructure, FixedPointType
from .trajectories import (
    DegenerateTrajectory,
    NodeTrajectory,
    linear_trajectory,
)

__all__ = [
    "spiral_t_star",
    "spiral_extremum_paper",
    "spiral_amplitude",
    "extremum_x",
    "extremum_time",
    "node_extremum_paper",
    "degenerate_extremum_paper",
]


def spiral_t_star(eig: Eigenstructure, x0: float, y0: float) -> float:
    """Paper eq. (18): time of the extremum closest to ``(x0, y0)``.

    ``t* = (1/beta) [ atan(alpha/beta) + atan((y0 - alpha x0)/(beta x0)) ]``
    with an extra ``pi/beta`` when ``x0 * y0 < 0`` so that ``t* >= 0``.

    Raises
    ------
    ValueError
        If the eigenstructure is not a focus or ``x0 == 0`` (the printed
        formula divides by ``x0``; use :func:`extremum_time` instead).
    """
    if eig.kind is not FixedPointType.FOCUS:
        raise ValueError("spiral_t_star applies to the focus case only")
    if x0 == 0.0:
        raise ValueError("paper formula (18) requires x(0) != 0")
    alpha, beta = eig.alpha, eig.beta
    base = math.atan(alpha / beta) + math.atan((y0 - alpha * x0) / (beta * x0))
    if x0 * y0 >= 0.0:
        t_star = base / beta
    else:
        t_star = (math.pi + math.atan(alpha / beta)
                  + math.atan((y0 - alpha * x0) / (beta * x0))) / beta
    # The principal-value arctangents can undershoot by one half-period
    # for some quadrants; normalise into [0, pi/beta).
    period = math.pi / beta
    while t_star < 0.0:
        t_star += period
    while t_star >= period and x0 * y0 >= 0.0:
        t_star -= period
    return t_star


def spiral_amplitude(eig: Eigenstructure, x0: float, y0: float) -> float:
    """The paper's spiral amplitude ``A`` (below eq. 12)."""
    if eig.kind is not FixedPointType.FOCUS:
        raise ValueError("spiral amplitude applies to the focus case only")
    alpha, beta = eig.alpha, eig.beta
    return (
        math.sqrt(
            (alpha * alpha + beta * beta) * x0 * x0
            - 2.0 * alpha * x0 * y0
            + y0 * y0
        )
        / beta
    )


def spiral_extremum_paper(eig: Eigenstructure, x0: float, y0: float) -> float:
    """Paper eqs. (19)-(20): extremum of ``x`` nearest ``(x0, y0)``.

    ``max_x^s = + A beta / sqrt(alpha^2 + beta^2) * exp(alpha t*)`` when
    ``y0 > 0`` (a maximum), the negative of that when ``y0 < 0`` (a
    minimum).  Uses the printed ``t*`` of eq. (18).
    """
    if y0 == 0.0:
        raise ValueError("extremum side is undefined for y(0) == 0")
    alpha, beta = eig.alpha, eig.beta
    amp = spiral_amplitude(eig, x0, y0)
    t_star = spiral_t_star(eig, x0, y0)
    magnitude = amp * beta / math.hypot(alpha, beta) * math.exp(alpha * t_star)
    return magnitude if y0 > 0 else -magnitude


def node_extremum_paper(eig: Eigenstructure, x0: float, y0: float) -> float | None:
    """Paper eq. (28): global extremum of ``x`` in the node case."""
    traj = NodeTrajectory(x0, y0, eig)
    return traj.extremum_x_paper_formula()


def degenerate_extremum_paper(eig: Eigenstructure, x0: float, y0: float) -> float | None:
    """Paper eq. (34): unique extremum of ``x`` in the degenerate case."""
    traj = DegenerateTrajectory(x0, y0, eig)
    return traj.extremum_x_paper_formula()


def extremum_time(eig: Eigenstructure, x0: float, y0: float) -> float | None:
    """Robust first time ``t > 0`` with ``y(t) = 0``, any eigenstructure."""
    return linear_trajectory(eig, x0, y0).first_y_zero_time()


def extremum_x(eig: Eigenstructure, x0: float, y0: float) -> float | None:
    """Robust extremum of ``x`` nearest the initial point.

    Evaluates the exact solution at the first ``y = 0`` time; agrees with
    the paper's eqs. (19)/(20), (28) and (34) on their domains and extends
    them to all initial conditions.
    """
    return linear_trajectory(eig, x0, y0).extremum_x()

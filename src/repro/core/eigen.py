"""Eigenstructure of the linearised BCN subsystems.

Both the rate-increase and rate-decrease subsystems linearise (eq. 9) to

.. math::

    \\dot x = y, \\qquad \\dot y = -n x - k n y

whose characteristic equation is :math:`\\lambda^2 + k n \\lambda + n = 0`
(eq. 35) with

* ``n = a`` in the rate-increase region, and
* ``n = b C`` in the rate-decrease region.

Because the physical parameters are positive, both coefficients are
positive, hence both subsystems are asymptotically stable in the classical
(Lyapunov/Routh–Hurwitz) sense — Proposition 1.  What distinguishes the
paper's six cases is the *shape* of the trajectories, decided by the
discriminant :math:`(k n)^2 - 4 n = n (k^2 n - 4)`:

==================  ======================  ==========================
discriminant        eigenvalues             singular-point type
==================  ======================  ==========================
``k^2 n < 4``       complex conjugates      stable focus (log spiral)
``k^2 n > 4``       distinct negative real  stable node  (parabola-like)
``k^2 n = 4``       repeated negative real  stable degenerate node
==================  ======================  ==========================
"""

from __future__ import annotations

import cmath
import enum
import math
from dataclasses import dataclass

from .parameters import NormalizedParams

__all__ = [
    "Region",
    "FixedPointType",
    "Eigenstructure",
    "characteristic_coefficients",
    "eigenstructure",
    "region_eigenstructure",
]


class Region(enum.Enum):
    """Which side of the switching line the dynamics operate on."""

    INCREASE = "increase"  #: sigma > 0, i.e. x + k y < 0
    DECREASE = "decrease"  #: sigma < 0, i.e. x + k y > 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FixedPointType(enum.Enum):
    """Classification of the origin for a linearised subsystem."""

    FOCUS = "focus"  #: complex eigenvalues, logarithmic-spiral orbits
    NODE = "node"  #: two distinct negative real eigenvalues
    DEGENERATE_NODE = "degenerate_node"  #: repeated negative real eigenvalue

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Eigenstructure:
    """Eigenvalues and derived constants of one linearised subsystem.

    Attributes
    ----------
    n:
        The characteristic constant (``a`` or ``b*C``).
    k:
        Switching-line slope parameter; the damping term is ``k*n``.
    kind:
        :class:`FixedPointType` of the origin.
    lambda1, lambda2:
        Eigenvalues as complex numbers.  For a focus they are
        ``alpha ± j beta``; for a node both are real with
        ``lambda1 < lambda2 < 0``; for a degenerate node they coincide.
    alpha, beta:
        Real/imaginary parts for the focus case (``beta > 0``); for real
        eigenvalues ``beta == 0`` and ``alpha`` is the mean eigenvalue.
    """

    n: float
    k: float
    kind: FixedPointType
    lambda1: complex
    lambda2: complex

    @property
    def m(self) -> float:
        """Damping coefficient ``m = k * n`` of the characteristic eq."""
        return self.k * self.n

    @property
    def discriminant(self) -> float:
        """``m^2 - 4 n``; negative for a focus, positive for a node."""
        return self.m * self.m - 4.0 * self.n

    @property
    def alpha(self) -> float:
        """Real part of the eigenvalues (``-m/2``)."""
        return -self.m / 2.0

    @property
    def beta(self) -> float:
        """Imaginary part of the focus eigenvalues (0 for real ones)."""
        return abs(self.lambda1.imag)

    @property
    def is_focus(self) -> bool:
        return self.kind is FixedPointType.FOCUS

    @property
    def real_eigenvalues(self) -> tuple[float, float]:
        """The real eigenvalues ``(lambda1, lambda2)``, node cases only."""
        if self.is_focus:
            raise ValueError("focus subsystem has no real eigenvalues")
        return self.lambda1.real, self.lambda2.real

    def natural_period(self) -> float:
        """Period ``2*pi/beta`` of one full spiral revolution (focus only)."""
        if not self.is_focus:
            raise ValueError("natural_period is defined only for a focus")
        return 2.0 * math.pi / self.beta


def characteristic_coefficients(params: NormalizedParams, region: Region) -> tuple[float, float]:
    """Return ``(m, n)`` of ``lambda^2 + m lambda + n = 0`` for a region.

    ``m = k * n`` always holds in the BCN system (eq. 35), a structural
    fact the stability proof leans on: it forces
    ``lambda1 < lambda2 < -1/k`` in node cases so that node-region
    trajectories cannot re-cross the switching line.
    """
    n = params.n_increase if region is Region.INCREASE else params.n_decrease
    return params.k * n, n


def eigenstructure(n: float, k: float, *, atol: float = 0.0) -> Eigenstructure:
    """Classify the linear subsystem ``x'' + k n x' + n x = 0``.

    Parameters
    ----------
    n, k:
        Positive characteristic constants.
    atol:
        Absolute tolerance on the discriminant below which the subsystem
        is treated as a degenerate node (exactly repeated eigenvalues).
        The default 0 classifies exactly.
    """
    if n <= 0 or k <= 0:
        raise ValueError(f"n and k must be positive, got n={n}, k={k}")
    m = k * n
    disc = m * m - 4.0 * n
    if abs(disc) <= atol or disc == 0.0:
        lam = -m / 2.0
        return Eigenstructure(n=n, k=k, kind=FixedPointType.DEGENERATE_NODE,
                              lambda1=complex(lam, 0.0), lambda2=complex(lam, 0.0))
    if disc < 0:
        root = cmath.sqrt(disc)
        lam1 = (-m - root) / 2.0
        lam2 = (-m + root) / 2.0
        return Eigenstructure(n=n, k=k, kind=FixedPointType.FOCUS,
                              lambda1=lam1, lambda2=lam2)
    root_r = math.sqrt(disc)
    lam1 = (-m - root_r) / 2.0  # the more negative eigenvalue
    lam2 = (-m + root_r) / 2.0
    return Eigenstructure(n=n, k=k, kind=FixedPointType.NODE,
                          lambda1=complex(lam1, 0.0), lambda2=complex(lam2, 0.0))


def region_eigenstructure(params: NormalizedParams, region: Region) -> Eigenstructure:
    """Eigenstructure of the linearised dynamics in ``region``."""
    _, n = characteristic_coefficients(params, region)
    return eigenstructure(n, params.k)

"""Closed-form phase trajectories of the linearised BCN subsystems.

Section IV.B of the paper solves the linearised dynamics

.. math::

    \\dot x = y, \\qquad \\dot y = -n x - k n y

in the three eigenvalue cases and derives, for each, the trajectory shape
and the extremum of ``x(t)`` (the queue excursion):

* **Case 1, focus** (``m^2 - 4n < 0``) — logarithmic spirals
  :math:`\\mathscr{H}` (eqs. 12–17), extrema via ``t*`` (eqs. 18–20).
* **Case 2, node** (``m^2 - 4n > 0``) — parabola-like curves
  :math:`\\mathscr{F}` (eqs. 21–28) with the invariant lines
  ``y = lambda_1 x`` and ``y = lambda_2 x``.
* **Case 3, degenerate node** (``m^2 - 4n = 0``) — curves
  :math:`\\mathscr{L}` (eqs. 29–34) with the single invariant line
  ``y = lambda x``.

Every trajectory class evaluates the exact solution at arbitrary times,
computes the first time ``y(t) = 0`` (where ``x`` attains an extremum,
since ``y = dx/dt``) and the first crossing of an arbitrary switching line
``x + k_s y = 0`` — all in closed form (the spiral case reduces to
inverting a phase, the node cases to a single logarithm).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .eigen import Eigenstructure, FixedPointType, eigenstructure

__all__ = [
    "LinearTrajectory",
    "SpiralTrajectory",
    "NodeTrajectory",
    "DegenerateTrajectory",
    "linear_trajectory",
]

_TIME_EPS = 1e-12


@runtime_checkable
class LinearTrajectory(Protocol):
    """Protocol shared by the three closed-form trajectory families."""

    x0: float
    y0: float
    eig: Eigenstructure

    def state(self, t: float) -> tuple[float, float]:
        """Exact state ``(x(t), y(t))`` at time ``t >= 0``."""
        ...

    def states(self, times: np.ndarray) -> np.ndarray:
        """Vectorised evaluation; returns an ``(len(times), 2)`` array."""
        ...

    def first_y_zero_time(self) -> float | None:
        """Smallest ``t > 0`` with ``y(t) = 0``, or None if none exists."""
        ...

    def first_line_crossing_time(self, line_k: float) -> float | None:
        """Smallest ``t > 0`` with ``x(t) + line_k * y(t) = 0``."""
        ...

    def extremum_x(self) -> float | None:
        """Value of ``x`` at the first ``y = 0`` crossing (local extremum)."""
        ...


def _first_positive_harmonic_root(
    p: float, q: float, beta: float, *, t_min: float = _TIME_EPS
) -> float | None:
    """First root ``t > t_min`` of ``P cos(beta t) + Q sin(beta t) = 0``.

    Writing ``P cos + Q sin = R cos(beta t - delta)`` with
    ``delta = atan2(Q, P)``, the roots are
    ``t_m = (delta + pi/2 + m*pi) / beta`` for integer ``m``.
    """
    if p == 0.0 and q == 0.0:
        return None  # identically zero — the caller sits on the locus
    delta = math.atan2(q, p)
    base = (delta + math.pi / 2.0) / beta
    # smallest integer m with base + m*pi/beta > t_min
    m = math.ceil((t_min - base) * beta / math.pi)
    t = base + m * math.pi / beta
    if t <= t_min:  # guard against FP round-off in ceil
        t += math.pi / beta
    return t


@dataclass(frozen=True)
class SpiralTrajectory:
    """Logarithmic-spiral solution of a stable-focus subsystem (eq. 12).

    The solution through ``(x0, y0)`` is::

        x(t) = exp(alpha t) * (x0 cos(beta t) + c sin(beta t))
        y(t) = exp(alpha t) * (y0 cos(beta t) + d sin(beta t))

    with ``c = (y0 - alpha x0)/beta`` and
    ``d = (alpha y0 - n x0)/beta`` (note ``alpha^2 + beta^2 = n``).

    Equivalent to the paper's amplitude/phase form
    ``x(t) = A exp(alpha t) cos(beta t + phi)`` — exposed through
    :attr:`amplitude` and :attr:`phase` — but evaluated in the
    numerically robust cos/sin basis.
    """

    x0: float
    y0: float
    eig: Eigenstructure

    def __post_init__(self) -> None:
        if self.eig.kind is not FixedPointType.FOCUS:
            raise ValueError("SpiralTrajectory requires a focus eigenstructure")

    # -- coefficients ---------------------------------------------------

    @property
    def _c(self) -> float:
        return (self.y0 - self.eig.alpha * self.x0) / self.eig.beta

    @property
    def _d(self) -> float:
        return (self.eig.alpha * self.y0 - self.eig.n * self.x0) / self.eig.beta

    @property
    def amplitude(self) -> float:
        """The paper's spiral amplitude ``A`` (below eq. 12)."""
        return math.hypot(self.x0, self._c)

    @property
    def phase(self) -> float:
        """The paper's spiral phase ``phi``, via quadrant-safe atan2."""
        return math.atan2(-self._c, self.x0)

    # -- evaluation -------------------------------------------------------

    def state(self, t: float) -> tuple[float, float]:
        a, b = self.eig.alpha, self.eig.beta
        e = math.exp(a * t)
        cb, sb = math.cos(b * t), math.sin(b * t)
        return (
            e * (self.x0 * cb + self._c * sb),
            e * (self.y0 * cb + self._d * sb),
        )

    def states(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        a, b = self.eig.alpha, self.eig.beta
        e = np.exp(a * times)
        cb, sb = np.cos(b * times), np.sin(b * times)
        x = e * (self.x0 * cb + self._c * sb)
        y = e * (self.y0 * cb + self._d * sb)
        return np.column_stack([x, y])

    def polar(self, t: float) -> tuple[float, float]:
        """Polar form ``(r, theta)`` of eq. (17).

        Uses the paper's transform ``r cos(theta) = beta x`` and
        ``r sin(theta) = alpha x - y``, under which the trajectory is
        ``r = sqrt(c1) * exp(alpha/beta * theta)``.
        """
        x, y = self.state(t)
        u = self.eig.beta * x
        v = self.eig.alpha * x - y
        return math.hypot(u, v), math.atan2(v, u)

    # -- events -----------------------------------------------------------

    def first_y_zero_time(self) -> float | None:
        return _first_positive_harmonic_root(self.y0, self._d, self.eig.beta)

    def first_line_crossing_time(self, line_k: float) -> float | None:
        p = self.x0 + line_k * self.y0
        q = self._c + line_k * self._d
        return _first_positive_harmonic_root(p, q, self.eig.beta)

    def extremum_x(self) -> float | None:
        t_star = self.first_y_zero_time()
        if t_star is None:
            return None
        return self.state(t_star)[0]

    def revolution_period(self) -> float:
        """Time ``2*pi/beta`` of one full turn around the focus."""
        return 2.0 * math.pi / self.eig.beta

    def half_turn_contraction(self) -> float:
        """Amplitude contraction ``exp(alpha * pi / beta)`` per half turn.

        Any ray from the origin is hit once per half turn; successive hits
        scale by this factor, which governs the spiral's decay rate and is
        the building block of the limit-cycle return map.
        """
        return math.exp(self.eig.alpha * math.pi / self.eig.beta)


@dataclass(frozen=True)
class NodeTrajectory:
    """Parabola-like solution of a stable-node subsystem (eq. 21).

    With distinct real eigenvalues ``lambda1 < lambda2 < 0``::

        x(t) = A1 exp(lambda1 t) + A2 exp(lambda2 t)
        y(t) = A1 lambda1 exp(lambda1 t) + A2 lambda2 exp(lambda2 t)

    where ``A1 = (lambda2 x0 - y0)/(lambda2 - lambda1)`` and
    ``A2 = (y0 - lambda1 x0)/(lambda2 - lambda1)``.  The invariant lines
    ``y = lambda1 x`` (``A2 = 0``) and ``y = lambda2 x`` (``A1 = 0``) are
    themselves trajectories; the latter is the slow asymptote every other
    trajectory approaches (Fig. 5).
    """

    x0: float
    y0: float
    eig: Eigenstructure

    def __post_init__(self) -> None:
        if self.eig.kind is not FixedPointType.NODE:
            raise ValueError("NodeTrajectory requires a node eigenstructure")

    @property
    def lambdas(self) -> tuple[float, float]:
        return self.eig.real_eigenvalues

    @property
    def a1(self) -> float:
        l1, l2 = self.lambdas
        return (l2 * self.x0 - self.y0) / (l2 - l1)

    @property
    def a2(self) -> float:
        l1, l2 = self.lambdas
        return (self.y0 - l1 * self.x0) / (l2 - l1)

    def state(self, t: float) -> tuple[float, float]:
        l1, l2 = self.lambdas
        e1, e2 = math.exp(l1 * t), math.exp(l2 * t)
        return (
            self.a1 * e1 + self.a2 * e2,
            self.a1 * l1 * e1 + self.a2 * l2 * e2,
        )

    def states(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        l1, l2 = self.lambdas
        e1, e2 = np.exp(l1 * times), np.exp(l2 * times)
        x = self.a1 * e1 + self.a2 * e2
        y = self.a1 * l1 * e1 + self.a2 * l2 * e2
        return np.column_stack([x, y])

    def _exponential_root(self, c1: float, c2: float) -> float | None:
        """First ``t > 0`` with ``c1 exp(lambda1 t) + c2 exp(lambda2 t) = 0``.

        Reduces to ``exp((lambda1 - lambda2) t) = -c2/c1``, which has a
        (unique) positive solution iff ``-c2/c1`` lies in ``(0, 1)``
        because ``lambda1 - lambda2 < 0``.
        """
        if c1 == 0.0:
            return None  # pure lambda2 mode never crosses
        ratio = -c2 / c1
        if ratio <= 0.0:
            return None
        l1, l2 = self.lambdas
        t = math.log(ratio) / (l1 - l2)
        return t if t > _TIME_EPS else None

    def first_y_zero_time(self) -> float | None:
        l1, l2 = self.lambdas
        return self._exponential_root(self.a1 * l1, self.a2 * l2)

    def first_line_crossing_time(self, line_k: float) -> float | None:
        l1, l2 = self.lambdas
        return self._exponential_root(
            self.a1 * (1.0 + line_k * l1), self.a2 * (1.0 + line_k * l2)
        )

    def extremum_x(self) -> float | None:
        """Global extremum of ``x(t)`` — the paper's ``mum_x^p`` (eq. 28)."""
        t_star = self.first_y_zero_time()
        if t_star is None:
            return None
        return self.state(t_star)[0]

    def extremum_x_paper_formula(self) -> float | None:
        """Evaluate the paper's closed form (eq. 28) directly.

        ``mum_x^p = -+ { (-l1)^{l1} (y0 - l2 x0)^{l2} /
        ((-l2)^{l2} (y0 - l1 x0)^{l1}) }^{1/(l2 - l1)}``, sign chosen by
        ``y0`` (maximum for ``y0 > 0``, minimum for ``y0 < 0``).  Only
        defined when the fractional powers have positive bases after the
        sign of ``y0`` is factored out; returns None otherwise (the
        time-based :meth:`extremum_x` covers all cases).
        """
        l1, l2 = self.lambdas
        u0 = self.y0 - l1 * self.x0  # proportional to A2
        v0 = self.y0 - l2 * self.x0  # proportional to -A1
        sign = 1.0 if self.y0 > 0 else -1.0
        if self.y0 == 0.0:
            return None
        bu, bv = sign * u0, sign * v0
        if bu <= 0.0 or bv <= 0.0:
            return None
        log_mag = (
            l1 * math.log(-l1)
            + l2 * math.log(bv)
            - l2 * math.log(-l2)
            - l1 * math.log(bu)
        ) / (l2 - l1)
        return sign * math.exp(log_mag)

    def invariant_lines(self) -> tuple[float, float]:
        """Slopes of the fast/slow invariant lines ``(lambda1, lambda2)``."""
        return self.lambdas

    def curve_exponent_relation(self, t: float) -> tuple[float, float]:
        """Evaluate ``(u, v)`` of eq. (27): ``v = c * u^{lambda1/lambda2}``.

        Returns ``u = y - lambda1 x`` and ``v = y - lambda2 x`` at time
        ``t`` — the coordinates in which the trajectory is an exact power
        curve, used by the tests to verify eq. (26)/(27).
        """
        x, y = self.state(t)
        l1, l2 = self.lambdas
        return y - l1 * x, y - l2 * x


@dataclass(frozen=True)
class DegenerateTrajectory:
    """Solution of the repeated-eigenvalue (degenerate node) case (eq. 29).

    With ``lambda1 = lambda2 = lambda = -m/2``::

        x(t) = (A3 + A4 t) exp(lambda t)
        y(t) = (A3 lambda + A4 + A4 lambda t) exp(lambda t)

    where ``A3 = x0`` and ``A4 = y0 - lambda x0``.  The single invariant
    line is ``y = lambda x``.
    """

    x0: float
    y0: float
    eig: Eigenstructure

    def __post_init__(self) -> None:
        if self.eig.kind is not FixedPointType.DEGENERATE_NODE:
            raise ValueError(
                "DegenerateTrajectory requires a degenerate-node eigenstructure"
            )

    @property
    def lam(self) -> float:
        return self.eig.lambda1.real

    @property
    def a3(self) -> float:
        return self.x0

    @property
    def a4(self) -> float:
        return self.y0 - self.lam * self.x0

    def state(self, t: float) -> tuple[float, float]:
        lam, a3, a4 = self.lam, self.a3, self.a4
        e = math.exp(lam * t)
        return ((a3 + a4 * t) * e, (a3 * lam + a4 + a4 * lam * t) * e)

    def states(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        lam, a3, a4 = self.lam, self.a3, self.a4
        e = np.exp(lam * times)
        x = (a3 + a4 * times) * e
        y = (a3 * lam + a4 + a4 * lam * times) * e
        return np.column_stack([x, y])

    def _affine_root(self, c0: float, c1: float) -> float | None:
        """First ``t > 0`` with ``(c0 + c1 t) exp(lambda t) = 0``."""
        if c1 == 0.0:
            return None
        t = -c0 / c1
        return t if t > _TIME_EPS else None

    def first_y_zero_time(self) -> float | None:
        return self._affine_root(self.a3 * self.lam + self.a4, self.a4 * self.lam)

    def first_line_crossing_time(self, line_k: float) -> float | None:
        # x + k y = (A3(1 + k lam) + A4 k) + A4 (1 + k lam) t, times exp.
        c0 = self.a3 * (1.0 + line_k * self.lam) + self.a4 * line_k
        c1 = self.a4 * (1.0 + line_k * self.lam)
        return self._affine_root(c0, c1)

    def extremum_x(self) -> float | None:
        t_star = self.first_y_zero_time()
        if t_star is None:
            return None
        return self.state(t_star)[0]

    def extremum_x_paper_formula(self) -> float | None:
        """The closed form of eq. (34), with a misprint corrected.

        ``x(t*) = -(A4/lambda) * exp(lambda t*)`` with
        ``lambda t* = -(lambda A3 + A4)/A4``.  The paper prints the
        exponent as ``-(lambda A3 + A4)/(lambda A4)`` — i.e. ``t*``
        itself rather than ``lambda t*`` — which is dimensionally a
        time, not a pure number; evaluating the printed form disagrees
        with the exact solution by ``exp((1 - lambda) t*)``.  (Erratum
        documented in EXPERIMENTS.md.)
        """
        if self.a4 == 0.0:
            return None
        exponent = -(self.lam * self.a3 + self.a4) / self.a4
        return -(self.a4 / self.lam) * math.exp(exponent)

    def invariant_line(self) -> float:
        """Slope ``lambda`` of the single invariant line."""
        return self.lam


def linear_trajectory(eig: Eigenstructure, x0: float, y0: float) -> LinearTrajectory:
    """Construct the closed-form trajectory through ``(x0, y0)``."""
    if eig.kind is FixedPointType.FOCUS:
        return SpiralTrajectory(x0, y0, eig)
    if eig.kind is FixedPointType.NODE:
        return NodeTrajectory(x0, y0, eig)
    return DegenerateTrajectory(x0, y0, eig)


def trajectory_for(n: float, k: float, x0: float, y0: float) -> LinearTrajectory:
    """Convenience: classify ``(n, k)`` and build the trajectory in one call."""
    return linear_trajectory(eigenstructure(n, k), x0, y0)

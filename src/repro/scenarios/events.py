"""Declarative scenario events and the :class:`Scenario` container.

A scenario is a *plan*: a base parameter point, a run horizon, and a
canonically ordered tuple of timed events — dynamic flow arrivals and
departures, synchronized incast bursts, link outages, and piecewise
time-varying capacity ``C(t)``.  Nothing here touches a simulator; the
plan is interpreted against either packet engine by
:func:`repro.scenarios.runtime.run_scenario`, which is what makes the
reference/batched conformance suite possible: both engines execute the
*same* declarative schedule.

Event ordering is part of the contract: :class:`Scenario` sorts its
events into a canonical total order ``(time, kind rank, fields)`` at
construction, so two scenarios built from the same event *set* — in any
order — are identical objects (the permutation-invariance property the
test suite checks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from ..core.parameters import BCNParams

__all__ = [
    "FlowArrival",
    "FlowDeparture",
    "IncastBurst",
    "LinkOutage",
    "CapacityChange",
    "Scenario",
    "sinusoidal_capacity",
    "piecewise_capacity",
]


def _require_time(t: float) -> None:
    if not (isinstance(t, (int, float)) and math.isfinite(t)) or t < 0:
        raise ValueError(f"event time must be a finite non-negative number, got {t!r}")


@dataclass(frozen=True)
class FlowArrival:
    """A dynamic flow arriving at ``t``.

    The flow sends at up to ``demand`` bits/s; with ``size_bits`` set it
    is a finite "mouse" that departs (and records its FCT) after sending
    that many bits, otherwise it persists to the end of the run.
    """

    t: float
    demand: float
    size_bits: float | None = None

    def __post_init__(self) -> None:
        _require_time(self.t)
        if self.demand <= 0:
            raise ValueError("demand must be positive")
        if self.size_bits is not None and self.size_bits <= 0:
            raise ValueError("size_bits must be positive when given")


@dataclass(frozen=True)
class FlowDeparture:
    """Permanently mute base source ``address`` at ``t``.

    Departure leaves the regulator state in place (its rate still counts
    toward the recorded aggregate in both engines) but stops emissions.
    """

    t: float
    address: int

    def __post_init__(self) -> None:
        _require_time(self.t)
        if self.address < 0:
            raise ValueError("address must be non-negative")


@dataclass(frozen=True)
class IncastBurst:
    """``n_servers`` synchronized finite responses starting at ``t``.

    The partition/aggregate fan-in: every server answers one client at
    once with ``response_bits``, each pacing at up to ``demand`` bits/s —
    the classic queue-buildup/PAUSE stress case.
    """

    t: float
    n_servers: int
    response_bits: float
    demand: float

    def __post_init__(self) -> None:
        _require_time(self.t)
        if self.n_servers < 1:
            raise ValueError("n_servers must be at least 1")
        if self.response_bits <= 0 or self.demand <= 0:
            raise ValueError("response_bits and demand must be positive")


@dataclass(frozen=True)
class LinkOutage:
    """Bottleneck egress blackout over ``[t, t + duration)``.

    Store-and-forward semantics in both engines: the in-flight frame
    completes, no new service starts, arrivals keep queueing (and
    dropping once the buffer fills).
    """

    t: float
    duration: float

    def __post_init__(self) -> None:
        _require_time(self.t)
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class CapacityChange:
    """Set the bottleneck service rate to ``capacity`` at ``t``."""

    t: float
    capacity: float

    def __post_init__(self) -> None:
        _require_time(self.t)
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")


#: Canonical same-timestamp ordering: capacity and outage state flips
#: apply before traffic-population changes, arrivals before departures.
_KIND_RANK = {
    CapacityChange: 0,
    LinkOutage: 1,
    IncastBurst: 2,
    FlowArrival: 3,
    FlowDeparture: 4,
}

ScenarioEvent = (
    FlowArrival | FlowDeparture | IncastBurst | LinkOutage | CapacityChange
)


def _event_sort_key(event) -> tuple:
    return (
        event.t,
        _KIND_RANK[type(event)],
        tuple(
            (f.name, getattr(event, f.name))
            for f in fields(event)
            if getattr(event, f.name) is not None
        ),
    )


@dataclass(frozen=True)
class Scenario:
    """A named, declarative, engine-agnostic experiment plan.

    Attributes
    ----------
    name:
        Scenario identifier (preset name, or anything descriptive).
    params:
        Base :class:`~repro.core.parameters.BCNParams` — the persistent
        "elephant" population and the switch configuration.
    duration:
        Run horizon in seconds.
    events:
        Timed events, canonically re-sorted at construction (see the
        module docstring); events scheduled at or beyond ``duration``
        never fire.
    frame_bits:
        Data frame size shared by every flow.
    seed:
        The seed the preset was built with (recorded for provenance;
        the plan itself is fully deterministic once built).
    """

    name: str
    params: BCNParams
    duration: float
    events: tuple[ScenarioEvent, ...] = ()
    frame_bits: int = 12_000
    seed: int = 0
    enable_pause: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name cannot be empty")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.frame_bits <= 0:
            raise ValueError("frame_bits must be positive")
        for event in self.events:
            if type(event) not in _KIND_RANK:
                raise TypeError(f"unknown scenario event {event!r}")
            if isinstance(event, FlowDeparture) \
                    and event.address >= self.params.n_flows:
                raise ValueError(
                    f"departure of source {event.address} but the base "
                    f"population has only {self.params.n_flows} flows"
                )
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=_event_sort_key))
        )

    def with_(self, **overrides) -> "Scenario":
        """A copy with fields replaced (re-validates and re-sorts)."""
        return replace(self, **overrides)

    # -- derived views -----------------------------------------------------

    def capacity_profile(self) -> list[tuple[float, float]]:
        """The piecewise-constant ``C(t)`` as ``[(t, capacity), ...]``.

        Starts with ``(0, params.capacity)``; one entry per
        :class:`CapacityChange` inside the horizon.  Outages are *not*
        folded in (they suspend service without changing the rate).
        """
        profile = [(0.0, self.params.capacity)]
        for event in self.events:
            if isinstance(event, CapacityChange) and event.t < self.duration:
                profile.append((event.t, event.capacity))
        return profile

    def capacity_integral(self) -> float:
        """``∫ C(t) dt`` over the horizon, outage windows excluded.

        The denominator for utilisation under time-varying capacity:
        the bits the bottleneck *could* have served.
        """
        profile = self.capacity_profile()
        times = [t for t, _ in profile] + [self.duration]
        total = sum(
            c * (times[i + 1] - times[i])
            for i, (_, c) in enumerate(profile)
        )
        # Subtract capacity lost to outages (service is frozen there).
        for event in self.events:
            if isinstance(event, LinkOutage) and event.t < self.duration:
                lo = event.t
                hi = min(event.t + event.duration, self.duration)
                total -= sum(
                    c * max(0.0, min(hi, times[i + 1]) - max(lo, times[i]))
                    for i, (_, c) in enumerate(profile)
                )
        return total

    def n_capacity_transitions(self) -> int:
        """How many ``C(t)`` changes fire inside the horizon."""
        return sum(
            1 for e in self.events
            if isinstance(e, CapacityChange) and e.t < self.duration
        )

    def dynamic_flow_count(self) -> int:
        """Sources added on top of the base population."""
        return sum(
            e.n_servers if isinstance(e, IncastBurst) else 1
            for e in self.events
            if isinstance(e, (FlowArrival, IncastBurst))
        )


def piecewise_capacity(steps: list[tuple[float, float]]) -> tuple[CapacityChange, ...]:
    """Turn ``[(t, C), ...]`` into a tuple of :class:`CapacityChange`."""
    return tuple(CapacityChange(t=t, capacity=c) for t, c in steps)


def sinusoidal_capacity(
    *,
    base: float,
    amplitude: float,
    period: float,
    t_start: float,
    t_end: float,
    steps: int = 8,
) -> tuple[CapacityChange, ...]:
    """A piecewise-constant approximation of sinusoidal ``C(t)``.

    ``steps`` capacity changes over ``[t_start, t_end)``, each holding
    ``base + amplitude * sin(2*pi*(t - t_start)/period)`` sampled at the
    step start.  The last step is followed by a restore to ``base`` at
    ``t_end`` (so the profile returns to nominal).
    """
    if amplitude >= base:
        raise ValueError("amplitude must stay below base (C > 0 everywhere)")
    if t_end <= t_start:
        raise ValueError("need t_end > t_start")
    if steps < 2:
        raise ValueError("need at least two steps")
    dt = (t_end - t_start) / steps
    changes = [
        CapacityChange(
            t=t_start + k * dt,
            capacity=base + amplitude * math.sin(
                2.0 * math.pi * (k * dt) / period
            ),
        )
        for k in range(steps)
    ]
    changes.append(CapacityChange(t=t_end, capacity=base))
    return tuple(changes)

"""Interpret a :class:`~repro.scenarios.events.Scenario` on a packet engine.

:func:`run_scenario` maps the declarative plan onto
:class:`~repro.simulation.network.BCNNetworkSimulator` primitives —
``add_flow`` for arrivals and incast servers, ``schedule_capacity`` /
``schedule_outage`` / ``schedule_departure`` for the switch-side events —
runs the chosen engine, and harvests flow-completion times and the obs
distributions into a :class:`ScenarioResult`.

Scenario-layer observability events (``flow_start``, ``flow_finish``,
``link_down``, ``link_up``, ``capacity_change``) are emitted *here*, from
the declarative schedule and the harvested FCTs, never from inside an
engine: the schedule is known up front and identical for both engines,
so the conformance suite can require these event streams to match
exactly while the engine-emitted streams (``bcn``, ``pause_on``...) are
held to documented tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import FCT_SLOWDOWN_EDGES
from ..simulation.network import (
    PACKET_ENGINES,
    BCNNetworkSimulator,
    SimulationResult,
)
from .events import (
    CapacityChange,
    FlowArrival,
    FlowDeparture,
    IncastBurst,
    LinkOutage,
    Scenario,
)

__all__ = ["FlowOutcome", "ScenarioResult", "run_scenario"]


@dataclass(frozen=True)
class FlowOutcome:
    """What happened to one finite dynamic flow."""

    address: int
    start_time: float
    size_bits: float
    demand: float
    finish_time: float | None

    @property
    def fct(self) -> float | None:
        """Send-side flow completion time (None if unfinished)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def slowdown(self) -> float | None:
        """FCT over the ideal transfer time ``size / demand``."""
        fct = self.fct
        if fct is None:
            return None
        return fct / (self.size_bits / self.demand)


@dataclass
class ScenarioResult:
    """Everything a scenario run produced, for both test and analysis use."""

    scenario: Scenario
    engine: str
    sim: SimulationResult
    flows: list[FlowOutcome]
    #: Total bits emitted by every source (persistent + dynamic).
    injected_bits: float
    #: Bits sitting in the bottleneck queue (and in service) at the end.
    queued_bits_end: float
    #: Bits lost to drop-tail.
    dropped_bits: float
    #: ``∫ C(t) dt`` with outage windows excluded (utilisation denominator).
    capacity_integral: float

    @property
    def fcts(self) -> dict[int, float]:
        """Completed flows only: ``{address: fct}``."""
        return {
            f.address: f.fct for f in self.flows if f.finish_time is not None
        }

    @property
    def unfinished(self) -> list[int]:
        return [f.address for f in self.flows if f.finish_time is None]

    def utilization(self) -> float:
        """Delivered bits over the deliverable bits under ``C(t)``."""
        if self.capacity_integral <= 0:
            return 0.0
        return self.sim.delivered_bits / self.capacity_integral

    def conservation_error(self) -> float:
        """``injected - (delivered + queued + dropped)`` in bits.

        Exact up to in-flight slack: at the horizon each source can
        have one frame on its uplink and the switch one in service, so
        the property suite allows ``(n_sources + 2) * frame_bits``.
        """
        return self.injected_bits - (
            self.sim.delivered_bits + self.queued_bits_end + self.dropped_bits
        )


def _emit_schedule_events(obs, scenario: Scenario, engine_tag: str) -> None:
    """Emit the declarative schedule as obs events (engine-identical)."""
    for event in scenario.events:
        if event.t >= scenario.duration:
            continue
        if isinstance(event, CapacityChange):
            obs.event("capacity_change", event.t, engine=engine_tag,
                      node="core-0", value=event.capacity)
        elif isinstance(event, LinkOutage):
            obs.event("link_down", event.t, engine=engine_tag,
                      node="core-0", value=event.duration)
            obs.event("link_up", min(event.t + event.duration,
                                     scenario.duration),
                      engine=engine_tag, node="core-0")


def run_scenario(
    scenario: Scenario,
    *,
    engine: str = "reference",
    obs=None,
) -> ScenarioResult:
    """Run ``scenario`` on the chosen packet engine and harvest results."""
    if engine not in PACKET_ENGINES:
        raise ValueError(
            f"unknown packet engine {engine!r}; pick from {PACKET_ENGINES}"
        )
    net = BCNNetworkSimulator(
        scenario.params,
        frame_bits=scenario.frame_bits,
        engine=engine,
        enable_pause=scenario.enable_pause,
        obs=obs,
    )

    # Dynamic population first (declared before run in both engines),
    # then the switch-side timed events.
    dynamic: list[tuple[int, FlowArrival | IncastBurst, float, float]] = []
    for event in scenario.events:
        if isinstance(event, FlowArrival):
            source = net.add_flow(
                start_time=event.t,
                demand=event.demand,
                size_bits=event.size_bits,
            )
            if event.size_bits is not None:
                dynamic.append(
                    (source.address, event, event.size_bits, event.demand)
                )
        elif isinstance(event, IncastBurst):
            for _ in range(event.n_servers):
                source = net.add_flow(
                    start_time=event.t,
                    demand=event.demand,
                    size_bits=event.response_bits,
                )
                dynamic.append(
                    (source.address, event, event.response_bits, event.demand)
                )
        elif isinstance(event, FlowDeparture):
            net.schedule_departure(event.t, event.address)
        elif isinstance(event, LinkOutage):
            net.schedule_outage(event.t, event.duration)
        elif isinstance(event, CapacityChange):
            net.schedule_capacity(event.t, event.capacity)

    sim = net.run(scenario.duration)

    flows = [
        FlowOutcome(
            address=address,
            start_time=event.t,
            size_bits=size_bits,
            demand=demand,
            finish_time=net.sources[address].finish_time,
        )
        for address, event, size_bits, demand in dynamic
    ]

    if engine == "reference":
        queued_end = net.switch.queue_bits
    else:
        kernel = net._batched_kernel
        queued_end = float(kernel._backlog) * scenario.frame_bits + (
            scenario.frame_bits if kernel._inflight else 0.0
        )
    injected = float(sum(s.bits_sent for s in net.sources))
    dropped_bits = float(net.switch.queue.dropped_bits)

    handle = net.obs
    if handle is not None:
        engine_tag = f"packet.{engine}"
        _emit_schedule_events(handle, scenario, engine_tag)
        for flow in flows:
            if flow.start_time < scenario.duration:
                handle.event("flow_start", flow.start_time,
                             engine=engine_tag, flow=flow.address)
            if flow.finish_time is not None:
                handle.event("flow_finish", flow.finish_time,
                             engine=engine_tag, flow=flow.address,
                             value=flow.fct)
        slowdowns = [f.slowdown for f in flows if f.slowdown is not None]
        if slowdowns:
            handle.observe_array(f"fct_slowdown.{engine_tag}",
                                 np.asarray(slowdowns, dtype=float),
                                 FCT_SLOWDOWN_EDGES)

    return ScenarioResult(
        scenario=scenario,
        engine=engine,
        sim=sim,
        flows=flows,
        injected_bits=injected,
        queued_bits_end=float(queued_end),
        dropped_bits=dropped_bits,
        capacity_integral=scenario.capacity_integral(),
    )

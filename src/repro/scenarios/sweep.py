"""N-seed scenario sweeps through the parallel runner.

A :class:`ScenarioPoint` is the picklable, ``with_()``-able base object
:func:`repro.runner.parallel.run_sweep_parallel` requires;
:func:`evaluate_scenario_point` is the module-level evaluate callable
(pool workers pickle it by reference).  :func:`run_scenario_sweep` wires
the two together so every preset runs as an N-seed sweep with identical
records on the serial (``workers<=1``) and pooled paths — the guarantee
the determinism suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..runner.parallel import run_sweep_parallel
from ..simulation.network import PACKET_ENGINES
from .presets import PRESETS, get_preset
from .runtime import run_scenario

__all__ = ["ScenarioPoint", "evaluate_scenario_point", "run_scenario_sweep"]


@dataclass(frozen=True)
class ScenarioPoint:
    """One (preset, engine, seed) cell of a scenario sweep grid."""

    preset: str
    engine: str = "reference"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.preset not in PRESETS:
            raise ValueError(
                f"unknown scenario preset {self.preset!r}; "
                f"available: {sorted(PRESETS)}"
            )
        if self.engine not in PACKET_ENGINES:
            raise ValueError(
                f"unknown packet engine {self.engine!r}; "
                f"pick from {PACKET_ENGINES}"
            )

    def with_(self, **overrides) -> "ScenarioPoint":
        """A validated copy with fields replaced (the runner seam)."""
        return replace(self, **overrides)


def evaluate_scenario_point(point: ScenarioPoint) -> dict:
    """Run one sweep cell and flatten it into a picklable record.

    The record carries the aggregate statistics the experiments and the
    determinism suite compare: utilisation under ``C(t)``, queue
    moments, control-plane counters, and the full per-flow FCT list in
    address order (``None`` for unfinished flows) so FCT
    *distributions* — not just means — can be checked across runner
    paths and engines.
    """
    scenario = get_preset(point.preset, point.seed)
    result = run_scenario(scenario, engine=point.engine)
    fcts = [f.fct for f in result.flows]
    finished = [f for f in fcts if f is not None]
    return {
        "preset": point.preset,
        "engine": point.engine,
        "utilization": result.utilization(),
        "queue_mean": result.sim.queue_mean(),
        "queue_peak": result.sim.queue_peak(),
        "dropped_frames": result.sim.dropped_frames,
        "pauses": result.sim.pauses,
        "bcn_messages": result.sim.bcn_negative + result.sim.bcn_positive,
        "n_dynamic_flows": len(result.flows),
        "n_finished": len(finished),
        "fcts": fcts,
        "fct_mean": float(np.mean(finished)) if finished else None,
        "fct_p99": float(np.percentile(finished, 99)) if finished else None,
        "conservation_error": result.conservation_error(),
    }


def run_scenario_sweep(
    preset: str,
    *,
    seeds,
    engine: str = "reference",
    workers: int | None = None,
    cache=None,
    stats=None,
    obs=None,
):
    """Run ``preset`` across ``seeds`` as a parallel sweep.

    Returns the runner's ``SweepResult``; records appear in seed order
    regardless of worker scheduling, and a :class:`~repro.runner.cache
    .ResultCache` makes repeated sweeps free.  Pass a
    :class:`~repro.runner.stats.RunnerStats` as ``stats`` to collect
    wall/worker timing.
    """
    base = ScenarioPoint(preset=preset, engine=engine)
    return run_sweep_parallel(
        base,
        {"seed": list(seeds)},
        evaluate_scenario_point,
        workers=workers,
        cache=cache,
        cache_id=f"scenario:{preset}:{engine}",
        stats=stats,
        obs=obs,
    )

"""Declarative heavy-traffic scenarios over the packet engines.

The scenario layer turns the static dumbbell harness into the dynamic
regimes the ROADMAP's north star asks for: Poisson short-flow churn over
persistent elephants, synchronized incast bursts, link outages and
piecewise time-varying capacity ``C(t)``, all expressed as declarative
timed events (:mod:`.events`), interpreted identically on the reference
and batched packet engines (:mod:`.runtime`), packaged as named presets
(:mod:`.presets`) and swept over seeds through the parallel runner
(:mod:`.sweep`).
"""

from .events import (
    CapacityChange,
    FlowArrival,
    FlowDeparture,
    IncastBurst,
    LinkOutage,
    Scenario,
    piecewise_capacity,
    sinusoidal_capacity,
)
from .presets import PRESETS, base_params, get_preset, preset_names
from .runtime import FlowOutcome, ScenarioResult, run_scenario
from .sweep import ScenarioPoint, evaluate_scenario_point, run_scenario_sweep

__all__ = [
    "Scenario",
    "FlowArrival",
    "FlowDeparture",
    "IncastBurst",
    "LinkOutage",
    "CapacityChange",
    "piecewise_capacity",
    "sinusoidal_capacity",
    "PRESETS",
    "preset_names",
    "get_preset",
    "base_params",
    "run_scenario",
    "ScenarioResult",
    "FlowOutcome",
    "ScenarioPoint",
    "evaluate_scenario_point",
    "run_scenario_sweep",
]

"""Named heavy-traffic scenario presets.

Each preset is a factory ``(seed) -> Scenario`` registered in
:data:`PRESETS`; randomised presets draw every variate from streams
keyed by the seed (see the workloads seeding discipline), so one seed
pins the entire plan and N-seed sweeps explore genuinely independent
event schedules.

All presets share one physical base point — a 1 Gb/s bottleneck with
four persistent "elephant" flows under the paper's Section IV-style BCN
gains — and stress it differently:

==================  ====================================================
``dc-baseline``     elephants + light Poisson mice churn
``incast-32``       a 32-server synchronized fan-in over the elephants
                    (drives the queue through ``q_sc``: a PAUSE episode)
``churn-heavy``     heavy Poisson arrivals/departures of short flows
``lossy-outage``    a mid-run egress blackout into a small buffer
                    (fills, drops, recovers)
``varying-capacity`` piecewise ``C(t)`` with three transitions
``combined-stress`` churn + incast + a capacity dip + an outage + an
                    elephant departure, all in one horizon
==================  ====================================================

Horizons are ~20 ms of simulated time so the full preset matrix (6
presets x 2 engines x several seeds) stays cheap enough for tier-1.
"""

from __future__ import annotations

import random
from typing import Callable

from ..core.parameters import BCNParams
from .events import (
    CapacityChange,
    FlowArrival,
    FlowDeparture,
    IncastBurst,
    LinkOutage,
    Scenario,
    piecewise_capacity,
)

__all__ = ["PRESETS", "get_preset", "preset_names", "base_params"]

#: Data frame size shared by every preset (1500 B keeps service times
#: round at 1 Gb/s: 12 us per frame).
FRAME_BITS = 12_000


def base_params(
    *, buffer_size: float = 8e6, q_sc: float | None = None
) -> BCNParams:
    """The shared physical base point (4 elephants on 1 Gb/s)."""
    return BCNParams(
        capacity=1e9,
        n_flows=4,
        q0=1e6,
        buffer_size=buffer_size,
        w=2.0,
        pm=0.1,
        gi=4.0,
        gd=1.0 / 128.0,
        ru=8e6,
        q_sc=q_sc,
    )


def _poisson_arrivals(
    *,
    arrival_rate: float,
    demand: float,
    size_bits: float,
    t_start: float,
    t_end: float,
    seed: int,
    stream: str,
) -> list[FlowArrival]:
    """Seeded Poisson mice over ``[t_start, t_end)``.

    One dedicated stream per preset (keyed ``{seed}:{stream}``) drives
    the inter-arrival draws, so presets sharing a seed still see
    independent processes.
    """
    rng = random.Random(f"{seed}:{stream}")
    events: list[FlowArrival] = []
    t = t_start + rng.expovariate(arrival_rate)
    while t < t_end:
        events.append(FlowArrival(t=t, demand=demand, size_bits=size_bits))
        t += rng.expovariate(arrival_rate)
    return events


def dc_baseline(seed: int = 0) -> Scenario:
    """Elephants plus light mice churn: the 'normal day' reference."""
    mice = _poisson_arrivals(
        arrival_rate=400.0,          # ~8 mice in 20 ms
        demand=2e8,
        size_bits=40 * FRAME_BITS,   # 480 kb each, ~2.4 ms at demand
        t_start=0.002,
        t_end=0.018,
        seed=seed,
        stream="dc-baseline",
    )
    return Scenario(
        name="dc-baseline",
        params=base_params(),
        duration=0.02,
        events=tuple(mice),
        frame_bits=FRAME_BITS,
        seed=seed,
    )


def incast_32(seed: int = 0) -> Scenario:
    """A 32-server synchronized fan-in over the elephants.

    The burst offers ~6.4 Gb/s into a 1 Gb/s port, so the queue shoots
    through ``q_sc`` — the preset the conformance suite uses to check
    that a PAUSE episode appears in the obs histograms of both engines.
    """
    return Scenario(
        name="incast-32",
        params=base_params(q_sc=3e6),
        duration=0.02,
        events=(
            IncastBurst(
                t=0.004,
                n_servers=32,
                response_bits=20 * FRAME_BITS,  # 240 kb per server
                demand=2e8,
            ),
        ),
        frame_bits=FRAME_BITS,
        seed=seed,
    )


def churn_heavy(seed: int = 0) -> Scenario:
    """Heavy Poisson churn: arrivals/departures dominate the dynamics."""
    mice = _poisson_arrivals(
        arrival_rate=2000.0,         # ~32 mice in 16 ms
        demand=3e8,
        size_bits=25 * FRAME_BITS,   # 300 kb each
        t_start=0.001,
        t_end=0.017,
        seed=seed,
        stream="churn-heavy",
    )
    return Scenario(
        name="churn-heavy",
        params=base_params(),
        duration=0.02,
        events=tuple(mice),
        frame_bits=FRAME_BITS,
        seed=seed,
    )


def lossy_outage(seed: int = 0) -> Scenario:
    """An early egress blackout into a small buffer: fill, drop, recover.

    The outage lands in the startup transient, while the elephants
    still offer ~1.5 Gb/s (before BCN has reined them in), so the 3 Mb
    buffer fills mid-outage and drop-tail engages — the batched
    engine's exact scalar fallback path — before service resumes and
    the loop recovers.
    """
    return Scenario(
        name="lossy-outage",
        params=base_params(buffer_size=3e6, q_sc=None),
        duration=0.02,
        events=(LinkOutage(t=0.002, duration=0.004),),
        frame_bits=FRAME_BITS,
        seed=seed,
    )


def varying_capacity(seed: int = 0) -> Scenario:
    """Piecewise ``C(t)``: 1 -> 0.6 -> 0.8 -> 1 Gb/s (three transitions)."""
    return Scenario(
        name="varying-capacity",
        params=base_params(),
        duration=0.02,
        events=piecewise_capacity(
            [(0.005, 6e8), (0.010, 8e8), (0.015, 1e9)]
        ),
        frame_bits=FRAME_BITS,
        seed=seed,
    )


def combined_stress(seed: int = 0) -> Scenario:
    """Everything at once: churn + incast + a capacity dip + an outage
    + an elephant departure."""
    mice = _poisson_arrivals(
        arrival_rate=800.0,
        demand=2e8,
        size_bits=25 * FRAME_BITS,
        t_start=0.001,
        t_end=0.018,
        seed=seed,
        stream="combined-stress",
    )
    events = tuple(mice) + (
        IncastBurst(t=0.005, n_servers=16, response_bits=15 * FRAME_BITS,
                    demand=2e8),
        CapacityChange(t=0.009, capacity=7e8),
        LinkOutage(t=0.012, duration=0.002),
        CapacityChange(t=0.015, capacity=1e9),
        FlowDeparture(t=0.016, address=0),
    )
    return Scenario(
        name="combined-stress",
        params=base_params(q_sc=3e6),
        duration=0.02,
        events=events,
        frame_bits=FRAME_BITS,
        seed=seed,
    )


#: The named preset registry: ``PRESETS[name](seed) -> Scenario``.
PRESETS: dict[str, Callable[[int], Scenario]] = {
    "dc-baseline": dc_baseline,
    "incast-32": incast_32,
    "churn-heavy": churn_heavy,
    "lossy-outage": lossy_outage,
    "varying-capacity": varying_capacity,
    "combined-stress": combined_stress,
}


def preset_names() -> list[str]:
    return sorted(PRESETS)


def get_preset(name: str, seed: int = 0) -> Scenario:
    """Build preset ``name`` for ``seed`` (raises on unknown names)."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario preset {name!r}; available: {preset_names()}"
        ) from None
    return factory(seed)

"""Routing over data-center topologies.

Static single-path routing for the multi-hop simulator: shortest paths
(hop count) with a deterministic ECMP tie-break hashed on the flow
identifier, so repeated runs place flows identically and equal-cost
fabric paths spread load.
"""

from __future__ import annotations

import hashlib

import networkx as nx

__all__ = ["shortest_route", "ecmp_route", "route_edges", "bottleneck_edge"]


def shortest_route(graph: nx.Graph, src: str, dst: str) -> list[str]:
    """One shortest path from ``src`` to ``dst`` (deterministic)."""
    return nx.shortest_path(graph, src, dst)


def _flow_hash(flow_id: int | str) -> int:
    digest = hashlib.sha256(str(flow_id).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def ecmp_route(graph: nx.Graph, src: str, dst: str, flow_id: int | str) -> list[str]:
    """Pick among all shortest paths by a stable hash of ``flow_id``.

    Mirrors switch ECMP: the same flow always takes the same path, and
    distinct flows spread across the equal-cost set.
    """
    paths = sorted(nx.all_shortest_paths(graph, src, dst))
    if not paths:
        raise nx.NetworkXNoPath(f"no path {src} -> {dst}")
    return paths[_flow_hash(flow_id) % len(paths)]


def route_edges(path: list[str]) -> list[tuple[str, str]]:
    """Directed edge list of a node path."""
    return list(zip(path, path[1:]))


def bottleneck_edge(
    graph: nx.Graph, routes: list[list[str]]
) -> tuple[tuple[str, str], int]:
    """The most-shared directed edge across ``routes`` and its flow count.

    A quick static congestion predictor: the edge traversed by the most
    flows is where the BCN congestion point will form first.
    """
    counts: dict[tuple[str, str], int] = {}
    for path in routes:
        for edge in route_edges(path):
            counts[edge] = counts.get(edge, 0) + 1
    if not counts:
        raise ValueError("no routes given")
    edge = max(sorted(counts), key=lambda e: counts[e])
    return edge, counts[edge]

"""Data-center topologies (networkx graphs) and routing helpers."""

from .graphs import dcell, dumbbell, fat_tree, hosts, monsoon, switches
from .partition import Partition, partition_graph
from .routing import bottleneck_edge, ecmp_route, route_edges, shortest_route

__all__ = [
    "dumbbell",
    "fat_tree",
    "dcell",
    "monsoon",
    "hosts",
    "switches",
    "shortest_route",
    "ecmp_route",
    "route_edges",
    "bottleneck_edge",
    "Partition",
    "partition_graph",
]

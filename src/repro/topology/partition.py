"""Deterministic graph partitioning for sharded fabric simulation.

The sharded multi-hop engine (:mod:`repro.shard`) runs one event kernel
per *shard* — a contiguous region of the topology — and exchanges
cross-shard traffic at conservative window barriers.  Every cut edge is
a message channel, so the partitioner's job is the classic min-cut-ish
balance problem: shards of near-equal node count with as few links
between them as possible.

:func:`partition_graph` is fully deterministic (no RNG): shards are
grown by breadth-first search from spread-out seeds, then a bounded
number of Kernighan–Lin-style refinement passes moves boundary nodes to
their neighbour-majority shard while a balance constraint holds.  On
the regular fabrics of :mod:`repro.topology.graphs` this recovers the
natural structure (fat-tree pods, DCell cells) without knowing it.

Invariants (enforced by :meth:`Partition.validate` and the property
suite): every node lies in exactly one shard, every shard is non-empty,
and the cut-edge set is symmetric — ``(u, v)`` is cut iff ``(v, u)``
is.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import networkx as nx

__all__ = ["Partition", "partition_graph"]


@dataclass(frozen=True)
class Partition:
    """An assignment of every topology node to one shard."""

    n_shards: int
    assignment: dict[str, int]

    def shard_of(self, node: str) -> int:
        """The shard owning ``node``."""
        return self.assignment[node]

    def nodes_of(self, shard: int) -> list[str]:
        """All nodes of one shard, in deterministic (sorted) order."""
        return sorted(n for n, s in self.assignment.items() if s == shard)

    def sizes(self) -> list[int]:
        """Node count per shard."""
        counts = [0] * self.n_shards
        for shard in self.assignment.values():
            counts[shard] += 1
        return counts

    def cut_edges(self, graph: nx.Graph) -> list[tuple[str, str]]:
        """Undirected edges whose endpoints lie in different shards.

        Returned in deterministic sorted order with each pair
        canonically ordered ``(min, max)``; the directed channel set of
        the sharded engine is both orientations of every row.
        """
        cut = []
        for u, v in graph.edges():
            if self.assignment[u] != self.assignment[v]:
                cut.append((u, v) if u <= v else (v, u))
        return sorted(cut)

    def validate(self, graph: nx.Graph) -> None:
        """Raise ``ValueError`` on any violated partition invariant."""
        nodes = set(graph.nodes)
        assigned = set(self.assignment)
        if assigned != nodes:
            missing = sorted(nodes - assigned)[:5]
            extra = sorted(assigned - nodes)[:5]
            raise ValueError(
                f"assignment does not cover the graph exactly "
                f"(missing {missing}, extra {extra})"
            )
        for node, shard in self.assignment.items():
            if not 0 <= shard < self.n_shards:
                raise ValueError(f"node {node!r} in out-of-range shard {shard}")
        sizes = self.sizes()
        if any(size == 0 for size in sizes):
            raise ValueError(f"empty shard in partition (sizes {sizes})")


def _bfs_grow(graph: nx.Graph, n_shards: int) -> dict[str, int]:
    """Grow ``n_shards`` contiguous regions by seeded breadth-first search.

    Seeds prefer the lowest-``layer`` unassigned node (hosts first), so
    shards grow upward from the access tier — on a fat-tree this pulls
    whole pods together instead of slicing through the core.
    """
    nodes = sorted(graph.nodes)
    assignment: dict[str, int] = {}
    remaining = len(nodes)

    def seed() -> str:
        best = None
        best_key = None
        for node in nodes:
            if node in assignment:
                continue
            key = (graph.nodes[node].get("layer", 0), node)
            if best_key is None or key < best_key:
                best, best_key = node, key
        assert best is not None
        return best

    for shard in range(n_shards):
        target = math.ceil(remaining / (n_shards - shard))
        frontier = [seed()]
        grown = 0
        while frontier and grown < target:
            node = heapq.heappop(frontier)
            if node in assignment:
                continue
            assignment[node] = shard
            grown += 1
            for neighbour in graph.neighbors(node):
                if neighbour not in assignment:
                    heapq.heappush(frontier, neighbour)
        # The reachable region may be smaller than the target
        # (disconnected graphs): the next seed() call restarts growth.
        while grown < target:
            node = seed()
            assignment[node] = shard
            grown += 1
            # keep growing from the fresh seed's component too
            for neighbour in sorted(graph.neighbors(node)):
                if neighbour not in assignment and grown < target:
                    assignment[neighbour] = shard
                    grown += 1
        remaining -= grown
    return assignment


def _refine(graph: nx.Graph, assignment: dict[str, int],
            n_shards: int, passes: int = 4) -> dict[str, int]:
    """Kernighan–Lin-flavoured boundary refinement under a balance cap.

    Each pass visits nodes in sorted order and moves a node to the
    neighbouring shard holding the strict majority of its edges when
    that reduces its personal cut degree and both shards stay within
    ``ceil(n / k) + slack`` / above 1 node.  Deterministic and
    monotone: the global cut size never increases.
    """
    n = len(assignment)
    max_size = math.ceil(n / n_shards) + max(1, n // (8 * n_shards))
    sizes = [0] * n_shards
    for shard in assignment.values():
        sizes[shard] += 1

    for _ in range(passes):
        moved = 0
        for node in sorted(assignment):
            here = assignment[node]
            counts = [0] * n_shards
            for neighbour in graph.neighbors(node):
                counts[assignment[neighbour]] += 1
            best = max(range(n_shards), key=lambda s: (counts[s], -s))
            if best == here or counts[best] <= counts[here]:
                continue
            if sizes[best] >= max_size or sizes[here] <= 1:
                continue
            assignment[node] = best
            sizes[here] -= 1
            sizes[best] += 1
            moved += 1
        if not moved:
            break
    return assignment


def partition_graph(graph: nx.Graph, n_shards: int) -> Partition:
    """Partition ``graph`` into ``n_shards`` balanced contiguous shards.

    Deterministic for a given graph and shard count: BFS growth from
    layer-aware seeds followed by bounded cut refinement (see module
    docstring).  ``n_shards`` must lie in ``[1, graph.number_of_nodes()]``.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("cannot partition an empty graph")
    if not 1 <= n_shards <= n:
        raise ValueError(
            f"n_shards must lie in [1, {n}], got {n_shards}"
        )
    if n_shards == 1:
        assignment = {node: 0 for node in graph.nodes}
    else:
        assignment = _bfs_grow(graph, n_shards)
        assignment = _refine(graph, assignment, n_shards)
    partition = Partition(n_shards=n_shards, assignment=assignment)
    partition.validate(graph)
    return partition

"""Data-center topology constructors.

The paper motivates its homogeneous-sources assumption with the regular,
symmetric fabrics deployed in data centers — Monsoon, Fat-Tree and
DCell — and the parallel read/write traffic of cluster file systems.
This module builds those fabrics as :mod:`networkx` graphs with a
uniform node attribute scheme:

* ``kind``: ``"host"`` | ``"edge"`` | ``"agg"`` | ``"core"`` | ``"tor"``
* ``layer``: integer tier (hosts are 0)

and edge attribute ``capacity`` (bits/s).  The graphs feed the routing
helpers in :mod:`repro.topology.routing` and the multi-hop simulator.
"""

from __future__ import annotations

import itertools

import networkx as nx

__all__ = [
    "dumbbell",
    "fat_tree",
    "dcell",
    "monsoon",
    "hosts",
    "switches",
]


def hosts(graph: nx.Graph) -> list[str]:
    """All host nodes of a topology, in deterministic order."""
    return sorted(n for n, d in graph.nodes(data=True) if d.get("kind") == "host")


def switches(graph: nx.Graph) -> list[str]:
    """All switch nodes of a topology, in deterministic order."""
    return sorted(n for n, d in graph.nodes(data=True) if d.get("kind") != "host")


def dumbbell(
    n_sources: int,
    *,
    capacity: float = 10e9,
    edge_capacity: float | None = None,
) -> nx.Graph:
    """The paper's single-bottleneck scenario (Fig. 1) as a graph.

    ``n_sources`` hosts connect through an edge switch to a core switch
    whose downlink to the sink is the bottleneck at ``capacity``.
    Host-edge links default to the bottleneck capacity (so sources can
    individually saturate it, as in the analysis).
    """
    if n_sources < 1:
        raise ValueError("need at least one source")
    g = nx.Graph(name=f"dumbbell-{n_sources}")
    edge_cap = capacity if edge_capacity is None else edge_capacity
    g.add_node("edge0", kind="edge", layer=1)
    g.add_node("core0", kind="core", layer=2)
    g.add_node("sink", kind="host", layer=0)
    g.add_edge("edge0", "core0", capacity=edge_cap * max(1, n_sources))
    g.add_edge("core0", "sink", capacity=capacity)
    for i in range(n_sources):
        h = f"h{i}"
        g.add_node(h, kind="host", layer=0)
        g.add_edge(h, "edge0", capacity=edge_cap)
    return g


def fat_tree(k: int, *, capacity: float = 10e9) -> nx.Graph:
    """A k-ary fat-tree (Al-Fares et al., SIGCOMM 2008).

    ``k`` must be even.  The fabric has ``k`` pods, each with ``k/2``
    edge and ``k/2`` aggregation switches, ``(k/2)^2`` core switches and
    ``k^3/4`` hosts; every link carries ``capacity``.
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be even and >= 2")
    g = nx.Graph(name=f"fat-tree-{k}")
    half = k // 2
    for c in range(half * half):
        g.add_node(f"core{c}", kind="core", layer=3)
    for pod in range(k):
        for a in range(half):
            agg = f"p{pod}a{a}"
            g.add_node(agg, kind="agg", layer=2)
            # aggregation a connects to core group a
            for c in range(half):
                g.add_edge(agg, f"core{a * half + c}", capacity=capacity)
        for e in range(half):
            edge = f"p{pod}e{e}"
            g.add_node(edge, kind="edge", layer=1)
            for a in range(half):
                g.add_edge(edge, f"p{pod}a{a}", capacity=capacity)
            for h in range(half):
                host = f"p{pod}e{e}h{h}"
                g.add_node(host, kind="host", layer=0)
                g.add_edge(host, edge, capacity=capacity)
    return g


def dcell(n: int, level: int = 1, *, capacity: float = 10e9) -> nx.Graph:
    """DCell_k with ``n`` servers per DCell_0 (Guo et al., SIGCOMM 2008).

    DCell_0 is ``n`` hosts on a mini-switch; DCell_k connects
    ``t_{k-1} + 1`` copies of DCell_{k-1} with one host-to-host link per
    pair of cells.  Only ``level`` in {0, 1, 2} is supported (level 2 is
    already thousands of hosts).
    """
    if n < 2:
        raise ValueError("DCell_0 needs at least 2 servers")
    if level not in (0, 1, 2):
        raise ValueError("only DCell levels 0-2 are supported")

    def build_dcell0(g: nx.Graph, prefix: str) -> list[str]:
        sw = f"{prefix}s"
        g.add_node(sw, kind="tor", layer=1)
        cell_hosts = []
        for i in range(n):
            h = f"{prefix}h{i}"
            g.add_node(h, kind="host", layer=0)
            g.add_edge(h, sw, capacity=capacity)
            cell_hosts.append(h)
        return cell_hosts

    def build(g: nx.Graph, prefix: str, lvl: int) -> list[str]:
        if lvl == 0:
            return build_dcell0(g, prefix)
        sub_hosts = []
        t_prev = n if lvl == 1 else n * (n + 1)
        n_cells = t_prev + 1
        for c in range(n_cells):
            sub_hosts.append(build(g, f"{prefix}c{c}.", lvl - 1))
        # full mesh between cells: one link per unordered cell pair,
        # using each cell's next unused host port
        port = [0] * n_cells
        for i, j in itertools.combinations(range(n_cells), 2):
            if port[i] < len(sub_hosts[i]) and port[j] < len(sub_hosts[j]):
                g.add_edge(
                    sub_hosts[i][port[i]], sub_hosts[j][port[j]], capacity=capacity
                )
                port[i] += 1
                port[j] += 1
        return [h for cell in sub_hosts for h in cell]

    g = nx.Graph(name=f"dcell-{n}-{level}")
    build(g, "", level)
    return g


def monsoon(
    n_tors: int,
    n_aggs: int = 2,
    n_hosts_per_tor: int = 4,
    *,
    capacity: float = 10e9,
    uplink_capacity: float | None = None,
) -> nx.Graph:
    """A Monsoon/VL2-style folded Clos: ToRs dual-homed to aggregations.

    Every ToR connects to every aggregation switch (a complete bipartite
    core), with hosts fanned out below the ToRs.
    """
    if n_tors < 1 or n_aggs < 1 or n_hosts_per_tor < 1:
        raise ValueError("all counts must be positive")
    up_cap = capacity if uplink_capacity is None else uplink_capacity
    g = nx.Graph(name=f"monsoon-{n_tors}x{n_aggs}")
    for a in range(n_aggs):
        g.add_node(f"agg{a}", kind="agg", layer=2)
    for t in range(n_tors):
        tor = f"tor{t}"
        g.add_node(tor, kind="tor", layer=1)
        for a in range(n_aggs):
            g.add_edge(tor, f"agg{a}", capacity=up_cap)
        for h in range(n_hosts_per_tor):
            host = f"tor{t}h{h}"
            g.add_node(host, kind="host", layer=0)
            g.add_edge(host, tor, capacity=capacity)
    return g
